"""The prefetch executor: plan streaming into a live cache.

Covers the DESIGN.md §12 priority rules (demand backoff, quota-stop
never failing the boot), equivalence with the warmer's fill, the
zero-length wire filter for plans past a shorter backing, and the
boot-report attribution contract: prefetch traffic rides its own
``trace_role`` and its event-derived byte sum reconciles exactly with
the executor's ``source_bytes``.
"""

import threading

import pytest

from repro.bootmodel import generate_boot_trace, plan_from_trace
from repro.bootmodel.prefetch import PlanExtent, PrefetchPlan
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.vm import replay_through_chain
from repro.cluster.prefetch import Prefetcher, intersect_bytes
from repro.cluster.warmer import (
    checksum_extents,
    warm_cache,
    working_set_extents,
)
from repro.imagefmt.driver import RangeSet
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.metrics.boot_report import build_report, format_report
from repro.metrics.tracing import TRACER, JsonlSink, load_trace
from repro.remote import BlockServer, RemoteImage
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

SIZE = 4 * MiB
QUOTA = 8 * MiB


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.disable()
    yield
    TRACER.disable()


def boot_trace(size=SIZE, seed=3):
    profile = tiny_profile(vmi_size=size, working_set=MiB,
                           boot_time=1.0)
    return generate_boot_trace(profile, seed=seed)


def make_cache(tmp_path, backing, name="cache.qcow2", *,
               quota=QUOTA, size=None):
    path = str(tmp_path / name)
    Qcow2Image.create(path, size=size, backing_file=backing,
                      cluster_size=512, cache_quota=quota).close()
    return Qcow2Image.open(path, read_only=False)


class _CountingSource:
    """Wraps a driver, recording every read_batch put on the 'wire'."""

    def __init__(self, inner, *, bump_stats_of=None):
        self.inner = inner
        self.requests: list[tuple[int, int]] = []
        self.batches = 0
        self._bump = bump_stats_of
        self.trace_role = None

    @property
    def size(self):
        return self.inner.size

    def read_batch(self, reqs):
        self.batches += 1
        self.requests.extend(reqs)
        if self._bump is not None:
            # Simulate concurrent demand traffic: by the time the next
            # prefetch batch starts, the guest has issued more reads.
            self._bump.stats.read_ops += 1
        return self.inner.read_batch(reqs)


class TestExecutor:
    def test_sync_fill_matches_warm_cache(self, tmp_path):
        """A synchronous plan run populates byte-for-byte (and
        cluster-for-cluster) what warm_cache fills for the same
        trace."""
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        trace = boot_trace()
        plan = plan_from_trace(trace, align=512)

        with make_cache(tmp_path, base_path, "pf.qcow2") as cache:
            report = Prefetcher(cache, plan).run()
            assert report.bytes_fetched == plan.total_bytes() > 0
            assert report.source_bytes == report.bytes_fetched
            assert not report.quota_exhausted
            extents = working_set_extents(trace, size=SIZE,
                                          align=cache.cluster_size)
            pf_sum = checksum_extents(cache, extents)
            cache.flush()  # warm_cache flushes too; compare like to like
            pf_phys = cache.physical_size

        with make_cache(tmp_path, base_path, "warm.qcow2") as cache:
            warm_cache(cache, trace)
            assert checksum_extents(cache, extents) == pf_sum

        # And warming the plan's own extents allocates the exact same
        # physical clusters the prefetcher did.
        with make_cache(tmp_path, base_path, "warm-plan.qcow2") as cache:
            warm_cache(cache, extents=[(e.offset, e.length)
                                       for e in plan])
            assert checksum_extents(cache, extents) == pf_sum
            assert cache.physical_size == pf_phys

    def test_quota_stop_never_fails_boot(self, tmp_path):
        """Quota exhaustion mirrors CoR §4.3: record the space error,
        stop filling, and the boot proceeds on demand reads."""
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        trace = boot_trace()
        plan = plan_from_trace(trace, align=512)

        with make_cache(tmp_path, base_path, quota=64 * KiB) as cache:
            report = Prefetcher(cache, plan).run()
            assert report.quota_exhausted
            assert report.bytes_fetched < plan.total_bytes()
            assert cache.cache_runtime.cor.space_errors >= 1
            assert not cache.cache_runtime.cor.enabled
            assert cache.physical_size <= 64 * KiB
            # The chain still boots — demand reads fall through.
            cow = Qcow2Image.create(str(tmp_path / "vm.qcow2"),
                                    backing_file=cache.path,
                                    backing_format="qcow2")
            with cow:
                result = replay_through_chain(trace, cow, vm_id="vm")
            assert result.base_bytes_read > 0

    def test_backoff_on_demand_traffic(self, tmp_path):
        """Any demand reads observed between batches yield the floor:
        one backoff per batch that followed demand activity."""
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        with make_cache(tmp_path, base_path) as cache:
            source = _CountingSource(RawImage.open(base_path),
                                     bump_stats_of=cache)
            plan = PrefetchPlan("img", 512, extents=[
                PlanExtent(0, 64 * KiB)])  # 8 chunks at 8 KiB
            pf = Prefetcher(cache, plan, source=source, depth=2,
                            chunk_bytes=8 * KiB,
                            backoff_seconds=0.0001)
            report = pf.run()
            source.inner.close()
            assert report.batches == 4
            # Every batch after the first observed the bumped counter.
            assert report.backoffs == 3

    def test_plan_past_shorter_backing_never_wires_zero_reads(
            self, tmp_path):
        """Extents wholly past the source clip to zero length and stay
        off the wire; the local tail is zero-filled."""
        base_path = make_patterned_base(tmp_path / "base.raw", size=MiB)
        with make_cache(tmp_path, base_path, size=2 * MiB) as cache:
            source = _CountingSource(RawImage.open(base_path))
            plan = PrefetchPlan("img", 512, extents=[
                PlanExtent(MiB - 4 * KiB, 8 * KiB),   # straddles end
                PlanExtent(MiB + 64 * KiB, 8 * KiB),  # wholly past
            ])
            pf = Prefetcher(cache, plan, source=source,
                            chunk_bytes=64 * KiB)
            report = pf.run()
            source.inner.close()
            assert all(ln > 0 for _off, ln in source.requests)
            assert report.bytes_fetched == 16 * KiB
            assert report.source_bytes == 4 * KiB
            assert cache.read(MiB - 4 * KiB, 4 * KiB) \
                == pattern(MiB - 4 * KiB, 4 * KiB)
            assert cache.read(MiB, 4 * KiB) == b"\0" * 4 * KiB
            assert cache.read(MiB + 64 * KiB, 8 * KiB) \
                == b"\0" * (8 * KiB)

    def test_stop_is_honored(self, tmp_path):
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        with make_cache(tmp_path, base_path) as cache:
            plan = PrefetchPlan("img", 512,
                                extents=[PlanExtent(0, MiB)])
            pf = Prefetcher(cache, plan)
            pf.stop()
            report = pf.run()
            assert report.stopped_early
            assert report.bytes_fetched == 0

    def test_validation(self, tmp_path):
        base_path = make_patterned_base(tmp_path / "base.raw")
        plan = PrefetchPlan("img", 512,
                            extents=[PlanExtent(0, 4 * KiB)])
        with RawImage.open(base_path) as img:
            # A backing-less driver needs an explicit source.
            with pytest.raises(ValueError, match="no backing"):
                Prefetcher(img, plan)
        with make_cache(tmp_path, base_path) as cache:
            with pytest.raises(ValueError, match="depth"):
                Prefetcher(cache, plan, depth=0)
            with pytest.raises(ValueError, match="chunk_bytes"):
                Prefetcher(cache, plan, chunk_bytes=0)
            pf = Prefetcher(cache, plan).start()
            with pytest.raises(RuntimeError, match="started"):
                pf.start()
            pf.stop()
            pf.join()

    def test_intersect_bytes(self):
        a, b = RangeSet(), RangeSet()
        a.add(0, 100)
        a.add(200, 100)
        b.add(50, 200)
        assert intersect_bytes(a, b) == 100
        assert intersect_bytes(a, RangeSet()) == 0


class TestReplayIntegration:
    def test_concurrent_boot_over_nbd(self, tmp_path):
        """The full datapath: a boot replay with a live prefetcher on
        a dedicated connection — accounting, hit/wasted split, and a
        cache checksum-identical to the warmer's fill."""
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        trace = boot_trace()
        plan = plan_from_trace(trace, align=512)
        base = RawImage.open(base_path)
        with BlockServer() as server:
            server.add_export("base", base)
            url = server.url("base")
            with make_cache(tmp_path, url, "pf.qcow2") as cache:
                cow = Qcow2Image.create(str(tmp_path / "vm.qcow2"),
                                        backing_file=cache.path,
                                        backing_format="qcow2")
                with cow:
                    side = RemoteImage.connect(url, compress=True)
                    pf = Prefetcher(cow.backing, plan, source=side)
                    result = replay_through_chain(
                        trace, cow, vm_id="vm", prefetcher=pf)
                    side.close()
                rep = pf.report
                assert rep.bytes_fetched > 0
                assert side.trace_role == "prefetch"
                # account() ran inside the replayer: the split covers
                # everything prefetched, and the demand stream found
                # prefetched clusters.
                assert rep.hit_bytes + rep.wasted_bytes \
                    == pf.prefetched.total()
                assert rep.hit_bytes > 0
                assert result.cache_hit_bytes > 0
                pf_sum = checksum_extents(
                    cache, working_set_extents(trace, size=SIZE,
                                               align=512))
            with make_cache(tmp_path, url, "warm.qcow2") as cache:
                warm_cache(cache, trace)
                assert checksum_extents(
                    cache, working_set_extents(trace, size=SIZE,
                                               align=512)) == pf_sum
        base.close()

    def test_boot_report_reconciles_prefetch_stream(self, tmp_path):
        """Prefetch wire reads land in their own attribution row, and
        the executor's source_bytes equals the event-derived sum — the
        'match' verdict in the rendered report."""
        trace_path = str(tmp_path / "boot.jsonl")
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        trace = boot_trace()
        plan = plan_from_trace(trace, align=512)
        base = RawImage.open(base_path)
        TRACER.enable(JsonlSink(trace_path))
        try:
            with BlockServer() as server:
                server.add_export("base", base)
                url = server.url("base")
                with make_cache(tmp_path, url) as cache:
                    cow = Qcow2Image.create(
                        str(tmp_path / "vm.qcow2"),
                        backing_file=cache.path,
                        backing_format="qcow2")
                    with cow:
                        side = RemoteImage.connect(url, compress=True)
                        pf = Prefetcher(cow.backing, plan, source=side)
                        replay_through_chain(trace, cow, vm_id="vm",
                                             prefetcher=pf)
                        side.close()
        finally:
            TRACER.disable()
        base.close()

        report = build_report(load_trace(trace_path))
        assert len(report.prefetch_runs) == 1
        run = report.prefetch_runs[0]
        assert run["source_bytes"] == pf.report.source_bytes
        assert report.layer_bytes("prefetch") == pf.report.source_bytes
        # Demand traffic keeps its own rows: the base row counts only
        # the demand connection's reads.
        assert report.layer_bytes("base") \
            + report.layer_bytes("prefetch") > 0
        text = format_report(report)
        assert "prefetch accounting" in text
        assert "(match)" in text

    def test_shared_lock_serializes_cache_access(self, tmp_path):
        """Passing one lock to both sides is the documented contract;
        a synchronous demand reader holding it never overlaps a
        prefetch write."""
        base_path = make_patterned_base(tmp_path / "base.raw", size=SIZE)
        lock = threading.Lock()
        plan = PrefetchPlan("img", 512,
                            extents=[PlanExtent(0, MiB)])
        with make_cache(tmp_path, base_path) as cache:
            pf = Prefetcher(cache, plan, lock=lock,
                            chunk_bytes=16 * KiB).start()
            for i in range(32):
                with lock:
                    blob = cache.read(i * 4 * KiB, 4 * KiB)
                assert blob == pattern(i * 4 * KiB, 4 * KiB)
            pf.stop()
            pf.join()
            assert pf.report.bytes_fetched >= 0  # no crash, clean join
