"""Tests for the cache-aware scheduler and its strategies (§3.4)."""

import pytest

from repro.cluster.cache_manager import CacheRegistry
from repro.cluster.scheduler import (
    CacheAwareScheduler,
    LoadAwareStrategy,
    NodeState,
    PackingStrategy,
    StripingStrategy,
    make_states,
)
from repro.errors import SchedulingError
from repro.sim.blockio import Location, SimImage
from repro.units import MiB


def registry_with_warm(node_ids, warm: dict[str, list[str]]):
    reg = CacheRegistry(node_ids, node_capacity_bytes=100 * MiB,
                        storage_capacity_bytes=100 * MiB)
    for vmi_id, nodes in warm.items():
        for nid in nodes:
            base = SimImage(vmi_id, 8 * MiB,
                            Location("nfs", "storage", vmi_id),
                            preallocated=True)
            cache = SimImage(f"{vmi_id}@{nid}", 8 * MiB,
                             Location("compute-disk", nid, "c"),
                             cluster_bits=9, backing=base,
                             cache_quota=4 * MiB)
            reg.node_pool(nid).put(vmi_id, cache)
    return reg


class TestStrategies:
    def test_packing_fills_one_node_first(self):
        sched = CacheAwareScheduler(PackingStrategy(),
                                    cache_affinity=False)
        states = make_states(["n0", "n1"], capacity_slots=3)
        states["n0"].used_slots = 1
        picks = [sched.select("v", states) for _ in range(3)]
        # n0 is fuller, so packing keeps choosing it until full.
        assert picks == ["n0", "n0", "n1"]

    def test_striping_spreads(self):
        sched = CacheAwareScheduler(StripingStrategy(),
                                    cache_affinity=False)
        states = make_states(["n0", "n1", "n2"], capacity_slots=2)
        picks = [sched.select("v", states) for _ in range(6)]
        assert picks.count("n0") == picks.count("n1") == \
            picks.count("n2") == 2
        # First sweep touches each node once.
        assert sorted(picks[:3]) == ["n0", "n1", "n2"]

    def test_load_aware_prefers_idle(self):
        sched = CacheAwareScheduler(LoadAwareStrategy(),
                                    cache_affinity=False)
        states = make_states(["n0", "n1"], capacity_slots=8)
        states["n0"].load = 0.9
        states["n1"].load = 0.1
        assert sched.select("v", states) == "n1"

    def test_deterministic_tiebreak(self):
        sched = CacheAwareScheduler(StripingStrategy(),
                                    cache_affinity=False)
        states = make_states(["nb", "na", "nc"], capacity_slots=8)
        # All equal: highest node_id wins the (score, node_id) max.
        assert sched.select("v", states) == "nc"


class TestCacheAffinity:
    def test_warm_node_preferred(self):
        reg = registry_with_warm(["n0", "n1", "n2"],
                                 {"centos": ["n1"]})
        sched = CacheAwareScheduler(StripingStrategy())
        states = make_states(["n0", "n1", "n2"])
        assert sched.select("centos", states, reg) == "n1"
        assert sched.stats.warm_placements == 1

    def test_strategy_breaks_ties_among_warm(self):
        reg = registry_with_warm(["n0", "n1", "n2"],
                                 {"centos": ["n0", "n2"]})
        sched = CacheAwareScheduler(StripingStrategy())
        states = make_states(["n0", "n1", "n2"])
        states["n0"].used_slots = 3
        # Both warm; striping prefers the emptier n2.
        assert sched.select("centos", states, reg) == "n2"

    def test_full_warm_node_falls_back_to_cold(self):
        reg = registry_with_warm(["n0", "n1"], {"centos": ["n0"]})
        sched = CacheAwareScheduler(StripingStrategy())
        states = make_states(["n0", "n1"], capacity_slots=1)
        states["n0"].used_slots = 1   # warm node is full
        assert sched.select("centos", states, reg) == "n1"
        assert sched.stats.cold_placements == 1

    def test_affinity_disabled(self):
        reg = registry_with_warm(["n0", "n1"], {"centos": ["n0"]})
        sched = CacheAwareScheduler(StripingStrategy(),
                                    cache_affinity=False)
        states = make_states(["n0", "n1"])
        states["n0"].used_slots = 1
        # Without affinity, striping picks the emptier cold node.
        assert sched.select("centos", states, reg) == "n1"

    def test_no_registry_means_no_affinity(self):
        sched = CacheAwareScheduler(StripingStrategy())
        states = make_states(["n0"])
        assert sched.select("centos", states, None) == "n0"


class TestCapacity:
    def test_slots_claimed(self):
        sched = CacheAwareScheduler(StripingStrategy(),
                                    cache_affinity=False)
        states = make_states(["n0"], capacity_slots=2)
        sched.select("v", states)
        assert states["n0"].used_slots == 1

    def test_cluster_full_raises(self):
        sched = CacheAwareScheduler()
        states = make_states(["n0"], capacity_slots=1)
        sched.select("v", states)
        with pytest.raises(SchedulingError):
            sched.select("v", states)

    def test_node_state_properties(self):
        s = NodeState("n0", capacity_slots=4, used_slots=3)
        assert s.free_slots == 1
        assert not s.is_full
        s.used_slots = 4
        assert s.is_full
