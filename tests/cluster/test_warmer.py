"""Parallel cache warming: working-set extraction, byte-for-byte
equivalence with the serial sample-boot path, and the simulated
Deployment.prewarm flow."""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.bootmodel.trace import BootTrace, TraceOp
from repro.bootmodel.vm import warm_cache_by_boot
from repro.cluster.cache_manager import CacheRegistry
from repro.cluster.deployment import Deployment, VMRequest
from repro.cluster.warmer import (
    checksum_extents,
    warm_cache,
    working_set_extents,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.sim.cluster_sim import Testbed
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern


def read_trace(extents, size=4 * MiB):
    return BootTrace("synthetic", size, [
        TraceOp("read", off, ln, 0.0) for off, ln in extents])


class TestWorkingSetExtents:
    def test_overlapping_and_adjacent_reads_merge(self):
        trace = read_trace([(0, 4096), (4096, 4096), (2048, 8192),
                            (64 * KiB, 512)])
        assert working_set_extents(trace) == \
            [(0, 10240), (64 * KiB, 512)]

    def test_alignment_rounds_out(self):
        trace = read_trace([(100, 50), (1536, 100)])
        assert working_set_extents(trace, align=512) == \
            [(0, 512), (1536, 512)]

    def test_writes_ignored(self):
        trace = BootTrace("t", MiB, [
            TraceOp("write", 0, 4096, 0.0),
            TraceOp("read", 8192, 512, 0.0),
        ])
        assert working_set_extents(trace) == [(8192, 512)]

    def test_clipping_mirrors_replay(self):
        """An op past the image end lands where the replayer puts it:
        offset clamped to size-512, length clipped to what remains."""
        size = 64 * KiB
        trace = read_trace([(size + 4096, 4096), (0, 512)], size=size)
        extents = working_set_extents(trace, size=size, align=512)
        assert extents == [(0, 512), (size - 512, 512)]

    def test_aligned_end_never_exceeds_size(self):
        size = 10 * 512
        trace = read_trace([(size - 100, 100)], size=size)
        assert working_set_extents(trace, size=size, align=4096) == \
            [(4096, size - 4096)]

    def test_bad_align_rejected(self):
        with pytest.raises(ValueError):
            working_set_extents(read_trace([(0, 512)]), align=0)


class TestWarmCache:
    QUOTA = 8 * MiB

    def _trace(self, size):
        profile = tiny_profile(vmi_size=size, working_set=MiB,
                               boot_time=1.0)
        return generate_boot_trace(profile, seed=3)

    def test_matches_serial_boot_byte_for_byte(self, tmp_path):
        """The warmed cache must hold exactly the bytes a sample boot's
        copy-on-read would have populated (checksummed over the working
        set)."""
        size = 4 * MiB
        base_path = make_patterned_base(tmp_path / "base.raw", size=size)
        trace = self._trace(size)

        serial_p = str(tmp_path / "serial.qcow2")
        warm_cache_by_boot(trace, base_path, serial_p, quota=self.QUOTA)

        warmed_p = str(tmp_path / "warmed.qcow2")
        Qcow2Image.create(warmed_p, backing_file=base_path,
                          cluster_size=512,
                          cache_quota=self.QUOTA).close()
        with Qcow2Image.open(warmed_p, read_only=False) as cache:
            report = warm_cache(cache, trace)
            assert not report.quota_exhausted
            assert report.bytes_written == report.bytes_requested > 0
            extents = working_set_extents(trace, size=size,
                                          align=cache.cluster_size)
            warm_sum = checksum_extents(cache, extents)
            warm_phys = cache.physical_size
        with Qcow2Image.open(serial_p) as serial:
            assert checksum_extents(serial, extents) == warm_sum

        # Against a writes-free boot the two paths must also allocate
        # the exact same physical clusters.  (The full trace's guest
        # writes trigger CoW head/tail fills, whose backing reads CoR
        # extra clusters into the serial cache — content over the read
        # working set is identical either way, checked above.)
        reads_only = BootTrace(trace.os_name, trace.vmi_size,
                               [op for op in trace.ops
                                if op.kind == "read"])
        serial_ro_p = str(tmp_path / "serial-ro.qcow2")
        warm_cache_by_boot(reads_only, base_path, serial_ro_p,
                           quota=self.QUOTA)
        with Qcow2Image.open(serial_ro_p) as serial:
            assert checksum_extents(serial, extents) == warm_sum
            assert serial.physical_size == warm_phys

    def test_remote_backing_is_pipelined(self, tmp_path, small_base):
        """Warming over nbd:// keeps several tagged requests in flight
        and still lands the exact base bytes."""
        trace = self._trace(4 * MiB)
        from repro.imagefmt.raw import RawImage

        base = RawImage.open(small_base)
        fi = FaultInjector(delay_rate=1.0, delay_seconds=0.002)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            cache_p = str(tmp_path / "cache.qcow2")
            Qcow2Image.create(cache_p, backing_file=server.url("base"),
                              cluster_size=512,
                              cache_quota=self.QUOTA).close()
            with Qcow2Image.open(cache_p, read_only=False) as cache:
                remote = cache.backing
                assert isinstance(remote, RemoteImage)
                assert remote.protocol_version >= 2
                report = warm_cache(cache, trace)
                assert report.bytes_written > 0
                assert remote.transport_stats.inflight_hwm >= 2
                for off, ln in working_set_extents(
                        trace, size=cache.size,
                        align=cache.cluster_size):
                    assert cache.read(off, ln) == pattern(off, ln)
        base.close()

    def test_quota_exhaustion_reported_not_raised(self, tmp_path):
        size = 4 * MiB
        base_path = make_patterned_base(tmp_path / "base.raw", size=size)
        quota = 64 * KiB
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=base_path,
                          cluster_size=512, cache_quota=quota).close()
        with Qcow2Image.open(cache_p, read_only=False) as cache:
            report = warm_cache(cache, extents=[(0, MiB)])
            assert report.quota_exhausted
            assert report.bytes_written < MiB
            assert cache.cache_runtime.cor.space_errors >= 1
            assert not cache.cache_runtime.cor.enabled
            assert cache.physical_size <= quota

    def test_extent_list_and_trace_are_exclusive(self, tmp_path):
        base_path = make_patterned_base(tmp_path / "base.raw")
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=base_path,
                          cache_quota=8 * MiB).close()
        with Qcow2Image.open(cache_p, read_only=False) as cache:
            with pytest.raises(ValueError):
                warm_cache(cache)
            with pytest.raises(ValueError):
                warm_cache(cache, read_trace([(0, 512)]),
                           extents=[(0, 512)])

    def test_overhang_extents_never_become_wire_reads(self, tmp_path,
                                                      small_base):
        """Extents wholly past a shorter remote backing clip to zero
        length and must not cost a round-trip each: zero wire read ops
        for a fully-overhanging working set, exactly one for a mixed
        batch."""
        from repro.imagefmt.raw import RawImage

        base = RawImage.open(small_base)  # 4 MiB
        with BlockServer() as server:
            server.add_export("base", base)
            cache_p = str(tmp_path / "cache.qcow2")
            Qcow2Image.create(cache_p, size=8 * MiB,
                              backing_file=server.url("base"),
                              cluster_size=512,
                              cache_quota=16 * MiB).close()
            with Qcow2Image.open(cache_p, read_only=False) as cache:
                remote = cache.backing
                assert isinstance(remote, RemoteImage)
                # Wholly past the backing: zero-filled locally, and
                # not a single request goes on the wire.
                before = remote.transport_stats.requests
                report = warm_cache(cache,
                                    extents=[(5 * MiB, 64 * KiB),
                                             (6 * MiB, 64 * KiB)],
                                    flush=False)
                assert report.bytes_written == 128 * KiB
                assert remote.transport_stats.requests == before
                assert cache.read(5 * MiB, 4 * KiB) == b"\0" * 4 * KiB
                # A mixed batch wires only the in-range part.
                before = remote.transport_stats.requests
                ops_before = server.export_stats("base").read_ops
                report = warm_cache(
                    cache, extents=[(4 * MiB - 4 * KiB, 8 * KiB),
                                    (7 * MiB, 4 * KiB)],
                    flush=False)
                assert report.bytes_written == 12 * KiB
                assert remote.transport_stats.requests - before == 1
                assert server.export_stats("base").read_ops \
                    - ops_before == 1
                assert cache.read(4 * MiB - 4 * KiB, 4 * KiB) \
                    == pattern(4 * MiB - 4 * KiB, 4 * KiB)
                assert cache.read(4 * MiB, 4 * KiB) == b"\0" * 4 * KiB
        base.close()

    def test_working_set_past_backing_end_zero_filled(self, tmp_path):
        """A cache larger than its backing warms the overhang to
        zeros, exactly as copy-on-read would."""
        base_path = make_patterned_base(tmp_path / "base.raw",
                                        size=1 * MiB)
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, size=2 * MiB,
                          backing_file=base_path,
                          cache_quota=8 * MiB).close()
        with Qcow2Image.open(cache_p, read_only=False) as cache:
            tail = MiB - 4096
            report = warm_cache(cache,
                                extents=[(tail, 8192)])
            assert report.bytes_written == 8192
            assert cache.read(tail, 4096) == pattern(tail, 4096)
            assert cache.read(MiB, 4096) == b"\0" * 4096


class TestWarmManifest:
    """Manifest built incrementally during the warm — one SHA-256
    pass over bytes already in hand, zero extra reads."""

    QUOTA = 8 * MiB

    def warmed(self, tmp_path, **kw):
        size = 4 * MiB
        base_path = make_patterned_base(tmp_path / "base.raw",
                                        size=size)
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=base_path,
                          cache_quota=self.QUOTA).close()
        cache = Qcow2Image.open(cache_p, read_only=False)
        report = warm_cache(cache, extents=[(0, size)], **kw)
        return cache, report

    def test_incremental_digests_match_a_rescan(self, tmp_path):
        from repro.imagefmt.manifest import build_manifest

        cache, report = self.warmed(tmp_path, manifest_vmi_id="vmi")
        try:
            manifest = report.manifest
            assert manifest is not None
            assert manifest.vmi_id == "vmi"
            assert manifest.cluster_size == cache.cluster_size
            rescanned = build_manifest(cache, vmi_id="vmi")
            assert manifest.digests == rescanned.digests
        finally:
            cache.close()

    def test_manifest_persisted_alongside_cache(self, tmp_path):
        from repro.imagefmt.manifest import (
            ClusterManifest,
            manifest_path,
        )

        cache, report = self.warmed(tmp_path, manifest_vmi_id="vmi")
        try:
            loaded = ClusterManifest.load(manifest_path(cache.path))
            assert loaded == report.manifest
        finally:
            cache.close()

    def test_save_can_be_suppressed(self, tmp_path):
        import os

        from repro.imagefmt.manifest import manifest_path

        cache, report = self.warmed(tmp_path, manifest_vmi_id="vmi",
                                    save_manifest=False)
        try:
            assert report.manifest is not None
            assert not os.path.exists(manifest_path(cache.path))
        finally:
            cache.close()

    def test_no_manifest_by_default(self, tmp_path):
        cache, report = self.warmed(tmp_path)
        try:
            assert report.manifest is None
        finally:
            cache.close()


class TestChecksumExtents:
    def test_streaming_matches_one_shot(self, tmp_path):
        """Bounded-chunk streaming hashes the same bytes as reading
        each extent whole, regardless of chunk/extent alignment."""
        import hashlib

        from repro.imagefmt.raw import RawImage

        base_path = make_patterned_base(tmp_path / "base.raw",
                                        size=MiB)
        extents = [(0, 700 * KiB), (800 * KiB, 100 * KiB + 13)]
        with RawImage.open(base_path) as img:
            expected = hashlib.sha256()
            for off, ln in extents:
                expected.update(img.read(off, ln))
            expected = expected.hexdigest()
            assert checksum_extents(img, extents) == expected
            for chunk in (1 * KiB, 64 * KiB, 3333):
                assert checksum_extents(img, extents,
                                        chunk_size=chunk) == expected

    def test_bad_chunk_size_rejected(self, tmp_path):
        from repro.imagefmt.raw import RawImage

        base_path = make_patterned_base(tmp_path / "base.raw")
        with RawImage.open(base_path) as img:
            with pytest.raises(ValueError, match="chunk_size"):
                checksum_extents(img, [(0, 512)], chunk_size=0)


class TestDeploymentPrewarm:
    SIZE = 64 * MiB
    QUOTA = 16 * MiB

    def _deployment(self, mode="storage-mem"):
        tb = Testbed(n_compute=2)
        node_ids = [n.node_id for n in tb.computes]
        reg = CacheRegistry(node_ids,
                            node_capacity_bytes=64 * MiB,
                            storage_capacity_bytes=64 * MiB)
        dep = Deployment(tb, reg, cache_mode=mode,
                         cache_quota=self.QUOTA)
        profile = tiny_profile(vmi_size=self.SIZE,
                               working_set=4 * MiB, boot_time=2.0)
        dep.register_vmi("tiny", self.SIZE,
                         generate_boot_trace(profile, seed=11))
        return dep

    def test_storage_prewarm_takes_time_and_registers(self):
        dep = self._deployment()
        node = dep.testbed.computes[0]
        elapsed = dep.prewarm("tiny", node.node_id)
        assert elapsed > 0
        cache = dep.registry.storage_pool.get("tiny")
        assert cache is not None
        assert cache.location.kind == "storage-mem"
        assert cache.stats.cor_bytes_written > 0

    def test_wave_after_prewarm_is_all_storage_warm(self):
        dep = self._deployment()
        dep.prewarm("tiny", dep.testbed.computes[0].node_id)
        reqs = [VMRequest(f"vm{i}", "tiny",
                          dep.testbed.computes[i % 2].node_id)
                for i in range(4)]
        res = dep.run_wave(reqs)
        assert set(res.decisions.values()) == {"storage-warm"}

    def test_prewarm_beats_no_cache_wave(self):
        """Figure 13's point, front-loaded: a prewarmed wave boots
        faster than the same wave without any cache."""
        cold = self._deployment(mode="none")
        reqs = [VMRequest(f"vm{i}", "tiny",
                          cold.testbed.computes[i % 2].node_id)
                for i in range(4)]
        base_time = cold.run_wave(reqs).mean_boot_time

        warm = self._deployment()
        warm.prewarm("tiny", warm.testbed.computes[0].node_id)
        warm_time = warm.run_wave(reqs).mean_boot_time
        assert warm_time < base_time

    def test_node_prewarm_registers_local_cache(self):
        dep = self._deployment(mode="compute-disk")
        node = dep.testbed.computes[1]
        dep.prewarm("tiny", node.node_id, register="node")
        cache = dep.registry.node_pool(node.node_id).get("tiny")
        assert cache is not None
        assert cache.location.kind == "compute-disk"
        res = dep.run_wave([VMRequest("vm0", "tiny", node.node_id)])
        assert res.decisions["vm0"] == "local-warm"

    def test_bad_register_target_rejected(self):
        dep = self._deployment()
        with pytest.raises(ValueError):
            dep.prewarm("tiny", dep.testbed.computes[0].node_id,
                        register="moon")
