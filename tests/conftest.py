"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.imagefmt.raw import RawImage
from repro.units import MiB

# Per-test wedge watchdog.  The remote-layer tests move real bytes over
# real sockets; a regression there wedges in recv() forever instead of
# failing.  When pytest-timeout is installed it owns enforcement
# (config via its own options); offline containers fall back to the
# SIGALRM watchdog below so a hung test still fails fast.
DEFAULT_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "90"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(enforced by pytest-timeout when installed, else by the "
        "SIGALRM watchdog in tests/conftest.py)")
    config.addinivalue_line(
        "markers",
        "smoke: quick-scale benchmark run wired into the tier-1 suite")
    config.addinivalue_line(
        "markers",
        "crashmatrix: exhaustive kill-point sweep; skipped unless "
        "REPRO_CRASH_MATRIX=1 (a strided smoke subset always runs)")
    config.addinivalue_line(
        "markers",
        "remote_stress: long nondeterministic concurrency soaks for "
        "the remote datapath; skipped unless REPRO_REMOTE_STRESS=1 "
        "(the deterministic regression versions always run)")


@pytest.fixture(autouse=True)
def _wedge_watchdog(request):
    if request.config.pluginmanager.hasplugin("timeout"):
        yield  # pytest-timeout is installed and owns enforcement
        return
    marker = request.node.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args \
        else DEFAULT_TEST_TIMEOUT
    if seconds <= 0 or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:g}s wedge watchdog "
            f"(REPRO_TEST_TIMEOUT or @pytest.mark.timeout to adjust)")

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)


def pattern(offset: int, length: int, seed: int = 0) -> bytes:
    """Deterministic, position-dependent content.

    Every byte is a pure function of its absolute offset (and an image
    seed), so any read of any range can be verified without storing the
    expected image anywhere: ``read(o, n) == pattern(o, n)`` must hold
    through arbitrary backing chains.
    """
    idx = np.arange(offset, offset + length, dtype=np.uint64)
    mixed = idx * np.uint64(0x9E3779B97F4A7C15) \
        + np.uint64(seed * 40503 + 1)
    # Fold high bits down so the byte stream has no short period.
    mixed ^= mixed >> np.uint64(29)
    mixed ^= mixed >> np.uint64(47)
    return (mixed & np.uint64(0xFF)).astype(np.uint8).tobytes()


def make_patterned_base(path, size: int = 8 * MiB, seed: int = 0,
                        hole_from: int | None = None) -> str:
    """Create a raw base image filled with ``pattern`` content.

    ``hole_from`` leaves the tail sparse (reads there must return zeros
    through the whole chain).
    """
    img = RawImage.create(str(path), size)
    end = hole_from if hole_from is not None else size
    step = 1 * MiB
    pos = 0
    while pos < end:
        n = min(step, end - pos)
        img.write(pos, pattern(pos, n, seed))
        pos += n
    img.close()
    return str(path)


@pytest.fixture
def workdir(tmp_path):
    return tmp_path


@pytest.fixture
def small_base(tmp_path):
    """A 4 MiB patterned raw base image."""
    return make_patterned_base(tmp_path / "base.raw", size=4 * MiB)
