"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imagefmt.raw import RawImage
from repro.units import MiB


def pattern(offset: int, length: int, seed: int = 0) -> bytes:
    """Deterministic, position-dependent content.

    Every byte is a pure function of its absolute offset (and an image
    seed), so any read of any range can be verified without storing the
    expected image anywhere: ``read(o, n) == pattern(o, n)`` must hold
    through arbitrary backing chains.
    """
    idx = np.arange(offset, offset + length, dtype=np.uint64)
    mixed = idx * np.uint64(0x9E3779B97F4A7C15) \
        + np.uint64(seed * 40503 + 1)
    # Fold high bits down so the byte stream has no short period.
    mixed ^= mixed >> np.uint64(29)
    mixed ^= mixed >> np.uint64(47)
    return (mixed & np.uint64(0xFF)).astype(np.uint8).tobytes()


def make_patterned_base(path, size: int = 8 * MiB, seed: int = 0,
                        hole_from: int | None = None) -> str:
    """Create a raw base image filled with ``pattern`` content.

    ``hole_from`` leaves the tail sparse (reads there must return zeros
    through the whole chain).
    """
    img = RawImage.create(str(path), size)
    end = hole_from if hole_from is not None else size
    step = 1 * MiB
    pos = 0
    while pos < end:
        n = min(step, end - pos)
        img.write(pos, pattern(pos, n, seed))
        pos += n
    img.close()
    return str(path)


@pytest.fixture
def workdir(tmp_path):
    return tmp_path


@pytest.fixture
def small_base(tmp_path):
    """A 4 MiB patterned raw base image."""
    return make_patterned_base(tmp_path / "base.raw", size=4 * MiB)
