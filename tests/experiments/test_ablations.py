"""Shape tests for the ablation runners at test-friendly scale."""

import pytest

from repro.experiments.ablations import (
    run_mixed_warm_cold,
    run_prefetch_ablation,
    run_scheduler_ablation,
)


class TestSchedulerAblation:
    @pytest.fixture(scope="class")
    def log(self):
        return run_scheduler_ablation(n_nodes=8, n_vms=4)

    def test_affinity_faster(self, log):
        assert log.get("affinity on").ys()[0] < \
            log.get("affinity off").ys()[0]

    def test_placement_counts(self, log):
        assert log.scalars["warm_placements_affinity_on"] == 4
        assert log.scalars["warm_placements_affinity_off"] == 0


class TestMixedWarmCold:
    @pytest.fixture(scope="class")
    def log(self):
        return run_mixed_warm_cold(n_nodes=8,
                                   warm_fractions=(0.0, 0.5, 1.0))

    def test_traffic_monotone_decreasing(self, log):
        ys = log.get("storage traffic").ys()
        assert ys[0] > ys[1] > ys[2]

    def test_all_warm_is_fastest(self, log):
        boot = log.get("mean boot time")
        assert boot.ys()[-1] < boot.ys()[0]

    def test_fully_warm_traffic_near_zero(self, log):
        traffic = log.get("storage traffic")
        assert traffic.ys()[-1] < 0.05 * traffic.ys()[0]


class TestPrefetchAblation:
    def test_bound_holds(self):
        log = run_prefetch_ablation()
        gain = log.scalars["improvement_pct"]
        assert 0 <= gain <= log.scalars["paper_read_wait_pct"] + 2
