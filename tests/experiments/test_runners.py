"""Smoke/shape tests for the experiment runners at reduced scale.

The full-scale shapes are asserted by the benchmarks; these tests keep
the runners themselves honest (axes respected, series named as the
figures label them, logs serializable) at a size quick enough for the
regular test suite.
"""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.experiments import (
    run_fig02_scaling_nodes,
    run_fig08_cache_creation,
    run_fig09_storage_traffic,
    run_fig10_final_arrangement,
    run_sec6_placement,
)
from repro.experiments.placement_exp import run_algorithm1_walkthrough
from repro.units import MiB

TINY = tiny_profile(vmi_size=32 * MiB, working_set=2 * MiB,
                    boot_time=2.0)
TINY_TRACE = generate_boot_trace(TINY, seed=3)


class TestScalingRunners:
    def test_fig02_axes_and_series(self):
        log = run_fig02_scaling_nodes([1, 2], networks=("ib",))
        assert [s.name for s in log.series] == ["QCOW2 - 32GbIB"]
        assert log.get("QCOW2 - 32GbIB").xs() == [1, 2]

    def test_fig02_rejects_unknown_network(self):
        with pytest.raises(ValueError):
            run_fig02_scaling_nodes([1], networks=("token-ring",))


class TestMicrobenchRunners:
    def test_fig08_series_present(self):
        log = run_fig08_cache_creation([10])
        names = {s.name for s in log.series}
        assert names == {"Warm cache", "Cold cache - on mem",
                         "Cold cache - on disk", "QCOW2"}

    def test_fig09_tiny_profile(self):
        log = run_fig09_storage_traffic(
            [1, 4], trace=TINY_TRACE, vmi_size=TINY.vmi_size)
        plain = log.get("QCOW2").ys()[0]
        cold_64k = log.get("Cold cache - cluster = 64KB")
        warm_512 = log.get("Warm cache - cluster = 512B")
        # The Figure 9 inversions hold even at tiny scale.
        assert max(cold_64k.ys()) > plain
        assert warm_512.y_at(4) < plain

    def test_fig10_tiny_profile(self):
        log = run_fig10_final_arrangement(
            [1, 4], trace=TINY_TRACE, vmi_size=TINY.vmi_size)
        # Six series: three time curves, three traffic curves.
        assert len(log.series) == 6
        assert log.get("Warm cache - tx size").y_at(4) < \
            log.get("QCOW2 - tx size").y_at(4)

    def test_logs_serialize(self, tmp_path):
        log = run_fig08_cache_creation([10])
        path = log.save(str(tmp_path))
        from repro.metrics.collectors import ExperimentLog

        assert ExperimentLog.load(path).experiment_id == "fig08"


class TestPlacementRunners:
    def test_sec6_scalars(self):
        log = run_sec6_placement(networks=("ib",))
        assert "ib_difference_pct" in log.scalars
        assert log.scalars["ib_difference_pct"] < 50

    def test_algorithm1_walkthrough_branches(self):
        log = run_algorithm1_walkthrough(n_nodes=4)
        assert log.scalars["wave1_cold"] > 0
        assert log.scalars["wave2_local_warm"] > 0
        assert log.scalars["wave2_storage_warm"] > 0
