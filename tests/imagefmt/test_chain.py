"""Tests for backing-chain construction and validation (§4.4 workflow)."""

import os

import pytest

from repro.errors import BackingChainError
from repro.imagefmt.chain import (
    chain_paths,
    create_cache_chain,
    create_cow_chain,
    open_chain,
    validate_chain,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import pattern


class TestCreateCowChain:
    def test_returns_open_rw(self, tmp_path, small_base):
        with create_cow_chain(small_base,
                              str(tmp_path / "c.qcow2")) as cow:
            assert not cow.read_only
            assert cow.backing.path == small_base

    def test_base_format_probed(self, tmp_path, small_base):
        with create_cow_chain(small_base,
                              str(tmp_path / "c.qcow2")) as cow:
            assert cow.header.backing_format == "raw"


class TestCreateCacheChain:
    def test_two_step_workflow(self, tmp_path, small_base):
        """§4.4: first qemu-img with quota → cache; then without → CoW."""
        cache_p = str(tmp_path / "cache.qcow2")
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cache_chain(small_base, cache_p, cow_p,
                                quota=MiB) as cow:
            assert chain_paths(cow) == [cow_p, cache_p, small_base]
        # The cache file's header carries the quota.
        assert Qcow2Image.peek_header(cache_p).cache_ext.quota == MiB

    def test_existing_cache_reused_not_recreated(self, tmp_path,
                                                 small_base):
        """'With a warm cache, there is obviously no need to invoke
        qemu-img for creating the cache.'"""
        cache_p = str(tmp_path / "cache.qcow2")
        with create_cache_chain(small_base, cache_p,
                                str(tmp_path / "cow1.qcow2"),
                                quota=MiB) as cow:
            cow.read(0, 128 * KiB)  # warm it
        warm_size = os.path.getsize(cache_p)
        mtime = os.path.getmtime(cache_p)
        with create_cache_chain(small_base, cache_p,
                                str(tmp_path / "cow2.qcow2"),
                                quota=MiB) as cow2:
            assert os.path.getsize(cache_p) >= warm_size
            assert cow2.read(0, 100) == pattern(0, 100)
        assert os.path.getmtime(cache_p) >= mtime

    def test_cow_cluster_size_independent_of_cache(self, tmp_path,
                                                   small_base):
        with create_cache_chain(small_base,
                                str(tmp_path / "cache.qcow2"),
                                str(tmp_path / "cow.qcow2"),
                                quota=MiB,
                                cache_cluster_size=512,
                                cow_cluster_size=64 * KiB) as cow:
            assert cow.cluster_size == 64 * KiB
            assert cow.backing.cluster_size == 512


class TestOpenValidateChain:
    def test_open_chain_roundtrip(self, tmp_path, small_base):
        cow_p = str(tmp_path / "c.qcow2")
        create_cow_chain(small_base, cow_p).close()
        with open_chain(cow_p) as cow:
            assert cow.read(0, 64) == pattern(0, 64)

    def test_loop_detection(self, tmp_path, small_base):
        a_p = str(tmp_path / "a.qcow2")
        b_p = str(tmp_path / "b.qcow2")
        create_cow_chain(small_base, a_p).close()
        Qcow2Image.create(b_p, backing_file=a_p,
                          backing_format="qcow2").close()
        # Corrupt a's header to point back at b.
        with Qcow2Image.open(a_p, read_only=False,
                             open_backing=False) as a:
            a.header.backing_file = b_p
            a._rewrite_header()
        with pytest.raises((BackingChainError, RecursionError)):
            open_chain(b_p)

    def test_validate_plain_image(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB) as img:
            validate_chain(img)  # no error

    def test_chain_paths_order(self, tmp_path, small_base):
        cache_p = str(tmp_path / "cache.qcow2")
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cache_chain(small_base, cache_p, cow_p,
                                quota=MiB) as cow:
            assert chain_paths(cow)[0] == cow_p
            assert chain_paths(cow)[-1] == small_base
