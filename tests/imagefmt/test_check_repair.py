"""check(repair=True) against a corpus of hand-corrupted images.

Each test damages a real image file in one targeted way, then asserts
the full repair contract:

1. ``check()`` *detects* the damage (reports errors or leaks);
2. ``check(repair=True)`` fixes it;
3. a fresh ``check()`` on the repaired image is clean;
4. for recoverable damage, the repaired image still reads correctly.

Plus the recovery-on-open round trip: an image left dirty by a crash
recovers automatically at open time, with the same end state repair
would produce.
"""

from __future__ import annotations

import struct

import pytest

from repro.errors import ReadOnlyImageError
from repro.imagefmt import constants as C
from repro.imagefmt.header import QCowHeader
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern

CLUSTER = 512
QUOTA = 1 * MiB


def patch_file(path, offset, data):
    with open(path, "r+b") as f:
        f.seek(offset)
        f.write(data)


@pytest.fixture
def warm_cache(tmp_path):
    """A cleanly closed cache with 32 KiB of CoR-populated content."""
    base = make_patterned_base(tmp_path / "base.raw", size=128 * KiB)
    p = str(tmp_path / "cache.qcow2")
    Qcow2Image.create(p, backing_file=base, cluster_size=CLUSTER,
                      cache_quota=QUOTA).close()
    with Qcow2Image.open(p, read_only=False) as img:
        img.read(0, 32 * KiB)
    return p


def first_l2_info(path):
    """(l2_table_offset, first_data_cluster_offset) of an image."""
    with Qcow2Image.open(path, open_backing=False) as img:
        l1e = next(e for e in img._l1 if e)
        l2_off = l1e & C.L1E_OFFSET_MASK
        table = img._load_l2(img._l1.index(l1e))
        data_off = next(e & C.L2E_OFFSET_MASK for e in table if e)
    return l2_off, data_off


def assert_detect_repair_verify(path, *, expect_error: str | None = None,
                                expect_leaks: bool = False,
                                readable: bool = True):
    """The shared detect → repair → re-check-clean sequence."""
    with Qcow2Image.open(path, read_only=False, open_backing=False) as img:
        found = img.check()
        if expect_error is not None:
            assert any(expect_error in e for e in found.errors), \
                (expect_error, found.errors)
        if expect_leaks:
            assert found.leaked_clusters > 0
        assert not found.ok or found.leaked_clusters > 0

        repaired = img.check(repair=True)
        assert repaired.repairs, "repair must report what it did"

        post = img.check()
        assert post.ok, post.errors
        assert post.leaked_clusters == 0
    # Clean when reopened from disk too, and readable through the chain.
    with Qcow2Image.open(path, read_only=False) as img:
        post = img.check()
        assert post.ok and post.leaked_clusters == 0, post.errors
        if readable:
            assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)


class TestCorruptionCorpus:
    def test_refcount_undercount(self, warm_cache):
        """A data cluster whose refcount was zeroed: metadata references
        it but the refcounts deny it."""
        _l2_off, data_off = first_l2_info(warm_cache)
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            img._alloc.set_refcount(data_off // CLUSTER, 0)
            img._alloc.flush_refcounts()
            # Bypass check-aware close paths: write refcounts only.
            img._f.fsync()
            img.closed = True
            img._f.close()
        assert_detect_repair_verify(
            warm_cache, expect_error="refcount is 0")

    def test_refcount_overcount_leak(self, warm_cache):
        """Clusters with refcounts but no referencing metadata: leaks."""
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            end = img._alloc.physical_clusters
            for ci in (end, end + 1, end + 2):
                img._alloc.set_refcount(ci, 1)
            img._alloc.physical_size += 3 * CLUSTER
            img._f.truncate(img._alloc.physical_size)
            img._alloc.flush_refcounts()
            img._f.fsync()
            img.closed = True
            img._f.close()
        assert_detect_repair_verify(warm_cache, expect_leaks=True)

    def test_stale_cache_size(self, warm_cache):
        """The header's current_size disagrees with the physical size."""
        header = Qcow2Image.peek_header(warm_cache)
        ext = header.cache_ext
        ext.current_size = ext.current_size + 7 * CLUSTER
        patch_file(warm_cache, 0, header.encode())
        assert_detect_repair_verify(warm_cache, expect_error="stale")

    def test_cache_size_over_quota(self, warm_cache):
        header = Qcow2Image.peek_header(warm_cache)
        header.cache_ext.current_size = QUOTA + CLUSTER
        patch_file(warm_cache, 0, header.encode())
        assert_detect_repair_verify(warm_cache,
                                    expect_error="exceeds quota")

    def test_cross_linked_clusters(self, warm_cache):
        """Two L2 entries pointing at the same physical cluster."""
        l2_off, data_off = first_l2_info(warm_cache)
        # Point entry #1 at entry #0's cluster (both COPIED-flagged).
        entry = struct.pack(">Q", data_off | C.OFLAG_COPIED)
        patch_file(warm_cache, l2_off + 8, entry)
        assert_detect_repair_verify(
            warm_cache, expect_error="referenced 2 times",
            readable=False)  # repair keeps one mapping; bytes differ

    def test_truncated_l2_table(self, warm_cache):
        """The file ends in the middle of where an L2 table should be."""
        l2_off, _ = first_l2_info(warm_cache)
        import os
        size = os.path.getsize(warm_cache)
        assert l2_off < size
        with open(warm_cache, "r+b") as f:
            f.truncate(l2_off + CLUSTER // 2)
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            found = img.check()
            assert not found.ok
            img.check(repair=True)
            post = img.check()
            assert post.ok, post.errors
        # The truncated table's mappings are gone; the data must come
        # from the backing chain again, byte-identical.
        with Qcow2Image.open(warm_cache, read_only=False) as img:
            assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)

    def test_repair_requires_writable(self, warm_cache):
        with Qcow2Image.open(warm_cache, read_only=True,
                             open_backing=False) as img:
            with pytest.raises(ReadOnlyImageError):
                img.check(repair=True)

    def test_clean_image_repair_is_noop(self, warm_cache):
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            report = img.check(repair=True)
            assert report.ok
            assert report.repairs == []


class TestRecoveryRoundTrip:
    def _make_dirty(self, warm_cache) -> None:
        """Set the dirty bit as a crash would have left it."""
        header = Qcow2Image.peek_header(warm_cache)
        header.incompatible_features |= C.FEATURE_DIRTY
        patch_file(warm_cache, 0, header.encode())

    def test_writable_open_recovers_and_persists(self, warm_cache):
        self._make_dirty(warm_cache)
        assert Qcow2Image.peek_header(warm_cache).is_dirty
        with Qcow2Image.open(warm_cache, read_only=False) as img:
            assert img.last_recovery is not None
            assert img.last_recovery.persisted
            assert img.check().ok
            assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)
        # The recovery was durable: clean header, clean image.
        assert not Qcow2Image.peek_header(warm_cache).is_dirty
        with Qcow2Image.open(warm_cache) as img:
            assert img.last_recovery is None

    def test_read_only_open_recovers_in_memory_only(self, warm_cache):
        self._make_dirty(warm_cache)
        with Qcow2Image.open(warm_cache, read_only=True) as img:
            assert img.last_recovery is not None
            assert not img.last_recovery.persisted
            assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)
        # Nothing persisted: the bit survives for a writable open.
        assert Qcow2Image.peek_header(warm_cache).is_dirty

    def test_recovery_equals_repair(self, tmp_path, warm_cache):
        """Open-recovery and check(repair=True) reach the same state."""
        import shutil

        self._make_dirty(warm_cache)
        twin = str(tmp_path / "twin.qcow2")
        shutil.copyfile(warm_cache, twin)

        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False):
            pass  # recovery-on-open
        with Qcow2Image.open(twin, read_only=False,
                             open_backing=False) as img:
            img.check(repair=True)

        a = Qcow2Image.peek_header(warm_cache)
        b = Qcow2Image.peek_header(twin)
        assert not a.is_dirty and not b.is_dirty
        assert a.cache_ext.current_size == b.cache_ext.current_size

    def test_info_reports_recovery(self, warm_cache):
        self._make_dirty(warm_cache)
        with Qcow2Image.open(warm_cache, read_only=False) as img:
            info = img.image_info()
            assert info["recovered"] is True
            assert info["recovery"]["reason"] == "dirty-open"
