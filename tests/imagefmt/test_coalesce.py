"""The coalesced qcow2 datapath: one pread per physically-contiguous
warm run, and write-path cluster resolution done exactly once."""

import pytest

from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import pattern

CLUSTER = 512


def count_file_io(img):
    """Instrument the image's PositionalFile; returns (preads, pwrites)
    lists that accumulate (offset, length) per call."""
    preads, pwrites = [], []
    orig_pread, orig_pwrite = img._f.pread, img._f.pwrite

    def pread(length, offset):
        preads.append((offset, length))
        return orig_pread(length, offset)

    def pwrite(data, offset):
        pwrites.append((offset, len(data)))
        return orig_pwrite(data, offset)

    img._f.pread = pread
    img._f.pwrite = pwrite
    return preads, pwrites


@pytest.fixture
def warm_cache(tmp_path, small_base):
    """A 512-byte-cluster cache whose first 64 KiB were populated by
    one sequential copy-on-read pass (physically contiguous)."""
    cache_p = str(tmp_path / "cache.qcow2")
    Qcow2Image.create(cache_p, backing_file=small_base,
                      cluster_size=CLUSTER,
                      cache_quota=2 * MiB).close()
    img = Qcow2Image.open(cache_p, read_only=False)
    assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
    yield img
    img.close()


class TestWarmReadCoalescing:
    def test_contiguous_run_is_one_pread(self, warm_cache):
        """64 warm clusters populated sequentially must be served by a
        single pread, not 64."""
        preads, _ = count_file_io(warm_cache)
        assert warm_cache.read(0, 32 * KiB) == pattern(0, 32 * KiB)
        assert len(preads) == 1
        assert preads[0][1] == 32 * KiB

    def test_l2_table_gap_splits_run(self, warm_cache):
        """With 512-byte clusters an L2 table covers 32 KiB, and the
        next table is allocated mid-stream — so a 64 KiB sequential
        read crosses exactly one physical gap: two preads, not 128."""
        preads, _ = count_file_io(warm_cache)
        assert warm_cache.read(0, 64 * KiB) == pattern(0, 64 * KiB)
        assert len(preads) == 2

    def test_misaligned_warm_read_still_one_pread(self, warm_cache):
        offset, length = 100, 10 * CLUSTER + 37
        preads, _ = count_file_io(warm_cache)
        assert warm_cache.read(offset, length) == \
            pattern(offset, length)
        assert len(preads) == 1

    def test_scattered_physical_runs_split(self, tmp_path, small_base):
        """Clusters populated in reverse order are physically
        discontiguous: each needs its own pread, contents still
        exact."""
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=small_base,
                          cluster_size=CLUSTER,
                          cache_quota=2 * MiB).close()
        n = 8
        with Qcow2Image.open(cache_p, read_only=False) as img:
            for i in reversed(range(n)):
                img.read(i * CLUSTER, CLUSTER)
            preads, _ = count_file_io(img)
            assert img.read(0, n * CLUSTER) == pattern(0, n * CLUSTER)
            assert len(preads) == n

    def test_mixed_warm_cold_runs(self, tmp_path, small_base):
        """A read alternating warm and cold clusters serves each warm
        run with one pread and each cold run with one backing fetch."""
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=small_base,
                          cluster_size=CLUSTER,
                          cache_quota=2 * MiB).close()
        with Qcow2Image.open(cache_p, read_only=False) as img:
            # Populate clusters [4, 8) only.
            img.read(4 * CLUSTER, 4 * CLUSTER)
            backing_ops0 = img.stats.backing_read_ops
            preads, _ = count_file_io(img)
            got = img.read(0, 12 * CLUSTER)
            assert got == pattern(0, 12 * CLUSTER)
            # Warm middle run: one pread.  Cold runs [0,4) and [8,12):
            # one backing fetch each (plus their populating writes).
            data_preads = [p for p in preads if p[1] >= CLUSTER]
            assert len(data_preads) == 1
            assert img.stats.backing_read_ops - backing_ops0 == 2


class TestWritePathResolveOnce:
    def test_overwrite_is_pure_data_io(self, tmp_path):
        """Overwriting an allocated region after the L2 cache is warm
        does zero metadata reads and leaves no metadata dirty."""
        p = str(tmp_path / "img.qcow2")
        img = Qcow2Image.create(p, size=MiB, cluster_size=CLUSTER)
        img.write(0, pattern(0, 32 * KiB))
        img.flush()
        preads, pwrites = count_file_io(img)
        img.write(0, pattern(0, 32 * KiB, seed=1))
        assert preads == []
        assert img._l2_dirty == set()
        # One pwrite per cluster in the data area, plus the single
        # header write that durably sets the dirty bit for the first
        # mutation after a flush (no L1/L2 writes mixed in).
        header_writes = [p for p in pwrites if p[0] == 0]
        assert len(header_writes) == 1
        assert len(pwrites) == 32 * KiB // CLUSTER + 1
        img.flush()
        assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB, seed=1)
        img.close()

    def test_fresh_open_resolves_l2_once(self, tmp_path):
        """After a cold open, an overwrite spanning many clusters of
        one L2 table costs exactly one metadata pread (the L2 load) —
        not one lookup per cluster."""
        p = str(tmp_path / "img.qcow2")
        with Qcow2Image.create(p, size=MiB,
                               cluster_size=CLUSTER) as img:
            img.write(0, pattern(0, 16 * KiB))
        with Qcow2Image.open(p, read_only=False) as img:
            preads, _ = count_file_io(img)
            img.write(0, pattern(0, 16 * KiB, seed=2))
            assert len(preads) == 1  # the one L2 table
            assert img.read(0, 16 * KiB) == pattern(0, 16 * KiB, seed=2)

    def test_overwrite_does_not_grow_file(self, tmp_path):
        p = str(tmp_path / "img.qcow2")
        with Qcow2Image.create(p, size=MiB,
                               cluster_size=CLUSTER) as img:
            img.write(0, pattern(0, 32 * KiB))
            img.flush()
            before = img.physical_size
            img.write(0, pattern(0, 32 * KiB, seed=3))
            img.flush()
            assert img.physical_size == before

    def test_partial_cluster_overwrite_in_place(self, tmp_path,
                                                small_base):
        """A sub-cluster write to an allocated cluster must patch in
        place — no CoW fill read, no new allocation."""
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=small_base,
                          cluster_size=CLUSTER,
                          cache_quota=2 * MiB).close()
        with Qcow2Image.open(cache_p, read_only=False) as img:
            img.read(0, 4 * CLUSTER)  # populate
            backing0 = img.stats.backing_read_ops
            preads, pwrites = count_file_io(img)
            img.write(100, b"\xaa" * 64)
            assert preads == []
            assert img.stats.backing_read_ops == backing0
            assert len(pwrites) == 1 and pwrites[0][1] == 64
            expect = bytearray(pattern(0, CLUSTER))
            expect[100:164] = b"\xaa" * 64
            assert img.read(0, CLUSTER) == bytes(expect)
