"""Tests for commit and rebase, including the cache-immutability rule."""

import pytest

from repro.errors import BackingChainError, ImageError
from repro.imagefmt.chain import create_cache_chain, create_cow_chain
from repro.imagefmt.commit import (
    commit,
    open_chain_for_commit,
    rebase,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern


class TestCommit:
    def test_commit_flattens_overlay_into_base(self, tmp_path,
                                               small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(100 * KiB, b"COMMITTED" * 100)
        overlay = open_chain_for_commit(cow_p)
        with overlay:
            nbytes = commit(overlay)
        assert nbytes > 0
        with RawImage.open(small_base) as base:
            assert base.read(100 * KiB, 9) == b"COMMITTED"
            # Untouched regions keep the original content.
            assert base.read(0, 100) == pattern(0, 100)

    def test_commit_into_cache_refused(self, tmp_path, small_base):
        """§3 immutability: guest data never enters a cache."""
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cache_chain(small_base,
                                str(tmp_path / "cache.qcow2"),
                                cow_p, quota=MiB) as cow:
            cow.write(0, b"guest data")
        overlay = open_chain_for_commit(cow_p)
        with overlay:
            with pytest.raises(ImageError, match="cache"):
                commit(overlay)

    def test_commit_without_backing_rejected(self, tmp_path):
        p = str(tmp_path / "solo.qcow2")
        Qcow2Image.create(p, MiB).close()
        with pytest.raises(BackingChainError):
            open_chain_for_commit(p)

    def test_commit_read_only_backing_rejected(self, tmp_path,
                                               small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(0, b"x")
        with Qcow2Image.open(cow_p, read_only=False) as overlay:
            # Normal open: backing is read-only.
            with pytest.raises(ImageError, match="read-only"):
                commit(overlay)

    def test_commit_then_fresh_overlay_sees_data(self, tmp_path,
                                                 small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(64 * KiB, b"NEW-GOLDEN")
        with open_chain_for_commit(cow_p) as overlay:
            commit(overlay)
        with create_cow_chain(small_base,
                              str(tmp_path / "cow2.qcow2")) as cow2:
            assert cow2.read(64 * KiB, 10) == b"NEW-GOLDEN"


class TestRebaseUnsafe:
    def test_unsafe_rewrites_pointer_only(self, tmp_path, small_base):
        copy_p = make_patterned_base(tmp_path / "copy.raw",
                                     size=4 * MiB)
        cow_p = str(tmp_path / "cow.qcow2")
        create_cow_chain(small_base, cow_p).close()
        copied = rebase(cow_p, copy_p, unsafe=True)
        assert copied == 0
        header = Qcow2Image.peek_header(cow_p)
        assert header.backing_file == copy_p
        with Qcow2Image.open(cow_p) as img:
            assert img.read(0, 100) == pattern(0, 100)


class TestRebaseSafe:
    def test_safe_rebase_preserves_content(self, tmp_path, small_base):
        """Rebasing onto a *different* base keeps the guest view."""
        other_p = make_patterned_base(tmp_path / "other.raw",
                                      size=4 * MiB, seed=9)
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(1 * MiB, b"LOCAL")
        copied = rebase(cow_p, other_p)
        assert copied > 0  # the divergent base content moved in
        with Qcow2Image.open(cow_p) as img:
            # Old-chain content everywhere...
            assert img.read(0, 1000) == pattern(0, 1000)
            assert img.read(2 * MiB, 1000) == pattern(2 * MiB, 1000)
            # ...including the local write.
            assert img.read(1 * MiB, 5) == b"LOCAL"

    def test_safe_rebase_onto_identical_base_copies_nothing(
            self, tmp_path, small_base):
        twin_p = make_patterned_base(tmp_path / "twin.raw",
                                     size=4 * MiB)
        cow_p = str(tmp_path / "cow.qcow2")
        create_cow_chain(small_base, cow_p).close()
        assert rebase(cow_p, twin_p) == 0

    def test_flatten_to_standalone(self, tmp_path, small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(0, b"TOP")
        copied = rebase(cow_p, None)
        assert copied > 0
        header = Qcow2Image.peek_header(cow_p)
        assert header.backing_file is None
        with Qcow2Image.open(cow_p) as img:
            assert img.backing is None
            assert img.read(0, 3) == b"TOP"
            assert img.read(3, 997) == pattern(3, 997)
            assert img.check().ok

    def test_rebased_cache_chain_still_valid(self, tmp_path,
                                             small_base):
        """Operational scenario: the base image moves to a new path;
        caches are rebased unsafely (content unchanged) and keep
        serving warm data."""
        import shutil

        cache_p = str(tmp_path / "cache.qcow2")
        with create_cache_chain(small_base, cache_p,
                                str(tmp_path / "cow.qcow2"),
                                quota=2 * MiB) as cow:
            cow.read(0, 512 * KiB)  # warm
        moved_p = str(tmp_path / "moved-base.raw")
        shutil.copy(small_base, moved_p)
        rebase(cache_p, moved_p, unsafe=True)
        with create_cache_chain(moved_p, cache_p,
                                str(tmp_path / "cow2.qcow2"),
                                quota=2 * MiB) as cow2:
            base = cow2.backing.backing
            assert cow2.read(0, 512 * KiB) == pattern(0, 512 * KiB)
            assert base.stats.bytes_read == 0  # all warm
