"""Tests for image conversion (chain flattening with zero detection)."""

import os

import pytest

from repro.imagefmt.chain import create_cache_chain, create_cow_chain
from repro.imagefmt.convert import _nonzero_runs, convert
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB, MiB

from tests.conftest import pattern


class TestNonzeroRuns:
    def test_all_zero(self):
        assert list(_nonzero_runs(b"\0" * 16384)) == []

    def test_all_data(self):
        runs = list(_nonzero_runs(b"\1" * 8192))
        assert runs == [(0, b"\1" * 8192)]

    def test_island(self):
        data = b"\0" * 4096 + b"\2" * 4096 + b"\0" * 4096
        runs = list(_nonzero_runs(data))
        assert runs == [(4096, b"\2" * 4096)]

    def test_tail_run(self):
        data = b"\0" * 4096 + b"\3" * 100
        runs = list(_nonzero_runs(data))
        assert runs == [(4096, b"\3" * 100)]

    def test_coverage_is_complete(self):
        import random

        rng = random.Random(1)
        data = bytearray(32768)
        for _ in range(10):
            off = rng.randrange(0, 32000)
            data[off] = 0xFF
        rebuilt = bytearray(32768)
        for off, chunk in _nonzero_runs(bytes(data)):
            rebuilt[off: off + len(chunk)] = chunk
        assert rebuilt == data


class TestConvert:
    def test_raw_to_qcow2_roundtrip(self, tmp_path, small_base):
        out = str(tmp_path / "out.qcow2")
        convert(small_base, out, output_format="qcow2")
        with Qcow2Image.open(out) as img:
            assert img.size == 4 * MiB
            assert img.backing is None
            assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
            assert img.check().ok

    def test_chain_flattened(self, tmp_path, small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(MiB, b"OVERLAY-DATA")
        out = str(tmp_path / "flat.qcow2")
        convert(cow_p, out)
        with Qcow2Image.open(out) as img:
            assert img.backing is None
            assert img.read(MiB, 12) == b"OVERLAY-DATA"
            assert img.read(0, 1000) == pattern(0, 1000)

    def test_qcow2_to_raw(self, tmp_path, small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        create_cow_chain(small_base, cow_p).close()
        out = str(tmp_path / "out.raw")
        convert(cow_p, out, output_format="raw")
        with RawImage.open(out) as img:
            assert img.size == 4 * MiB
            assert img.read(2 * MiB, 100) == pattern(2 * MiB, 100)

    def test_sparse_input_stays_small(self, tmp_path):
        src = str(tmp_path / "sparse.raw")
        img = RawImage.create(src, 32 * MiB)
        img.write(16 * MiB, b"tiny island")
        img.close()
        out = str(tmp_path / "out.qcow2")
        written = convert(src, out)
        assert written < 8 * KiB
        # The qcow2 holds one data cluster plus metadata, not 32 MiB.
        assert os.path.getsize(out) < MiB
        with Qcow2Image.open(out) as q:
            assert q.read(16 * MiB, 11) == b"tiny island"
            assert q.read(0, 4096) == b"\0" * 4096

    def test_cache_chain_conversion(self, tmp_path, small_base):
        """Converting a warm cache gives a standalone image holding the
        boot working set view (useful for shipping cache templates)."""
        cache_p = str(tmp_path / "cache.qcow2")
        with create_cache_chain(small_base, cache_p,
                                str(tmp_path / "cow.qcow2"),
                                quota=2 * MiB) as cow:
            cow.read(0, 256 * KiB)
        out = str(tmp_path / "flat-cache.qcow2")
        convert(cache_p, out)
        with Qcow2Image.open(out) as img:
            assert img.read(0, 256 * KiB) == pattern(0, 256 * KiB)

    def test_bad_output_format(self, tmp_path, small_base):
        with pytest.raises(ValueError):
            convert(small_base, str(tmp_path / "x"),
                    output_format="vmdk")


class TestConvertCLI:
    def test_cli(self, tmp_path, small_base, capsys):
        from repro.imagefmt.qemu_img import main

        out = str(tmp_path / "o.qcow2")
        code = main(["convert", "-O", "qcow2", small_base, out])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "Converted" in stdout
        assert os.path.exists(out)
