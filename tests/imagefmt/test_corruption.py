"""Failure injection: corrupt images must fail loudly, not silently.

``repro-img check`` (and open()) are the guard rails for every cache
file a cloud would keep around; these tests corrupt real files in
targeted ways and assert the driver notices.
"""

import os
import struct

import pytest

from repro.errors import (
    CorruptImageError,
    InvalidImageError,
    UnsupportedFeatureError,
)
from repro.imagefmt.chain import create_cache_chain
from repro.imagefmt.constants import OFLAG_COMPRESSED
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import pattern


@pytest.fixture
def image_path(tmp_path):
    p = str(tmp_path / "a.qcow2")
    with Qcow2Image.create(p, 4 * MiB, cluster_size=4096) as img:
        img.write(0, pattern(0, 64 * KiB))
        img.write(MiB, pattern(MiB, 8 * KiB))
    return p


def patch_file(path, offset, data):
    with open(path, "r+b") as f:
        f.seek(offset)
        f.write(data)


class TestHeaderCorruption:
    def test_zeroed_magic(self, image_path):
        patch_file(image_path, 0, b"\0\0\0\0")
        with pytest.raises(InvalidImageError):
            Qcow2Image.open(image_path)

    def test_future_version(self, image_path):
        patch_file(image_path, 4, struct.pack(">I", 9))
        with pytest.raises(UnsupportedFeatureError):
            Qcow2Image.open(image_path)

    def test_absurd_virtual_size(self, image_path):
        patch_file(image_path, 24, struct.pack(">Q", 1 << 62))
        with pytest.raises(InvalidImageError):
            Qcow2Image.open(image_path)

    def test_truncated_file(self, image_path):
        size = os.path.getsize(image_path)
        with open(image_path, "r+b") as f:
            f.truncate(size // 2)
        # Either the open or the first read must notice.
        with pytest.raises((CorruptImageError, InvalidImageError)):
            with Qcow2Image.open(image_path) as img:
                img.read(0, 64 * KiB)

    def test_empty_file(self, tmp_path):
        p = str(tmp_path / "empty.qcow2")
        open(p, "wb").close()
        with pytest.raises(InvalidImageError):
            Qcow2Image.open(p)


class TestMetadataCorruption:
    def test_l2_pointer_past_eof(self, image_path):
        header = Qcow2Image.peek_header(image_path)
        # Point L1[0] somewhere far past the end of the file.
        bogus = (1 << 40) | (1 << 63)
        patch_file(image_path, header.l1_table_offset,
                   struct.pack(">Q", bogus))
        with Qcow2Image.open(image_path) as img:
            with pytest.raises(CorruptImageError):
                img.read(0, 4096)

    def test_compressed_cluster_rejected(self, image_path):
        header = Qcow2Image.peek_header(image_path)
        with open(image_path, "rb") as f:
            f.seek(header.l1_table_offset)
            l1_entry = struct.unpack(">Q", f.read(8))[0]
        l2_offset = l1_entry & 0x00FFFFFFFFFFFE00
        with open(image_path, "rb") as f:
            f.seek(l2_offset)
            l2_entry = struct.unpack(">Q", f.read(8))[0]
        patch_file(image_path, l2_offset,
                   struct.pack(">Q", l2_entry | OFLAG_COMPRESSED))
        with Qcow2Image.open(image_path) as img:
            with pytest.raises(UnsupportedFeatureError):
                img.read(0, 512)

    def test_check_reports_refcount_mismatch(self, image_path):
        header = Qcow2Image.peek_header(image_path)
        # Zero out the refcount table: every cluster becomes
        # "in use by metadata but refcount 0".
        patch_file(image_path, header.refcount_table_offset,
                   b"\0" * 4096)
        with Qcow2Image.open(image_path) as img:
            report = img.check()
        assert not report.ok
        assert any("refcount is 0" in e for e in report.errors)


class TestChainDamage:
    def test_missing_backing_at_open(self, tmp_path, small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        chain = create_cache_chain(small_base,
                                   str(tmp_path / "cache.qcow2"),
                                   cow_p, quota=MiB)
        chain.close()
        os.unlink(small_base)
        from repro.errors import BackingChainError

        with pytest.raises(BackingChainError):
            Qcow2Image.open(cow_p, read_only=False)

    def test_cache_deleted_under_cow(self, tmp_path, small_base):
        cache_p = str(tmp_path / "cache.qcow2")
        cow_p = str(tmp_path / "cow.qcow2")
        create_cache_chain(small_base, cache_p, cow_p,
                           quota=MiB).close()
        os.unlink(cache_p)
        from repro.errors import BackingChainError

        with pytest.raises(BackingChainError):
            Qcow2Image.open(cow_p, read_only=False)

    def test_quota_field_tampered_to_zero_demotes_cache(
            self, tmp_path, small_base):
        """A cache whose quota extension reads zero is just a plain
        image again (backward compatibility of the extension)."""
        cache_p = str(tmp_path / "cache.qcow2")
        cow_p = str(tmp_path / "cow.qcow2")
        create_cache_chain(small_base, cache_p, cow_p,
                           quota=MiB).close()
        header = Qcow2Image.peek_header(cache_p)
        header.cache_ext.quota = 0
        blob = header.encode()
        patch_file(cache_p, 0, blob)
        with Qcow2Image.open(cow_p, read_only=False) as cow:
            cache = cow.backing
            assert not cache.cache_runtime.quota_policy.is_cache
            # Reads still work (no CoR, plain passthrough).
            assert cow.read(0, 1000) == pattern(0, 1000)
