"""Kill-point crash matrix: every crash must recover to a clean image.

The harness counts the pwrites/fsyncs of an un-killed scenario run,
then replays the scenario against a fresh image with a kill point armed
at each position, simulates the crash (unsynced writes lost, reordered
or torn — see :mod:`repro.imagefmt.faultio`), reopens, and asserts the
recovery invariants:

* the image opens and recovers automatically (no manual repair step);
* ``check()`` is clean afterwards;
* every read through the chain is byte-identical to the base content
  (the scenarios only ever store base-identical bytes, so the answer
  does not depend on which unsynced writes survived);
* a cache's recorded current size never exceeds its quota.

Tier-1 runs a strided subset of kill points with the cheap crash modes;
the exhaustive sweep (every kill point x every mode x torn variants) is
opt-in: ``REPRO_CRASH_MATRIX=1 pytest -m crashmatrix``.
"""

from __future__ import annotations

import os

import pytest

from repro.imagefmt import faultio
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern

CLUSTER = 512
QUOTA = 1 * MiB
BASE_SIZE = 256 * KiB
IO_SPAN = 16 * KiB  # bytes each scenario touches

FULL_SWEEP = os.environ.get("REPRO_CRASH_MATRIX") == "1"


# -- scenarios -------------------------------------------------------------
# Each writes only base-identical bytes, so the post-recovery oracle is
# simply "reads match the base pattern" regardless of what survived.

def scenario_cor_fill(img) -> None:
    """Cold reads populate the cache via copy-on-read, then flush."""
    img.read(0, IO_SPAN)
    img.flush()


def scenario_alloc_writes(img) -> None:
    """Allocating writes (cache warming path), partial and full
    clusters, then flush."""
    img.write(0, pattern(0, IO_SPAN))
    img.write(IO_SPAN + 100, pattern(IO_SPAN + 100, 3 * CLUSTER))
    img.flush()


def scenario_two_flushes(img) -> None:
    """Mutations spanning two flush intervals (dirty bit set, cleared,
    set again)."""
    img.read(0, 4 * KiB)
    img.flush()
    img.write(8 * KiB, pattern(8 * KiB, 4 * KiB))
    img.flush()


SCENARIOS = {
    "cor-fill": scenario_cor_fill,
    "alloc-writes": scenario_alloc_writes,
    "two-flushes": scenario_two_flushes,
}


@pytest.fixture(scope="module")
def crash_base(tmp_path_factory):
    path = tmp_path_factory.mktemp("crash") / "base.raw"
    return make_patterned_base(path, size=BASE_SIZE)


def make_cache(tmp_path, crash_base, tag: str) -> str:
    path = str(tmp_path / f"cache-{tag}.qcow2")
    Qcow2Image.create(path, backing_file=crash_base,
                      cluster_size=CLUSTER, cache_quota=QUOTA,
                      sync="barrier").close()
    return path


def run_killed(cache_path: str, scenario, *, mode: str = "drop-all",
               seed: int = 0, torn: bool = False, **kill) -> None:
    """Run ``scenario`` until the armed kill point fires, then apply
    the crash model and drop the image without flushing."""
    img = Qcow2Image.open(cache_path, read_only=False, sync="barrier")
    shim = faultio.arm(img, **kill)
    with pytest.raises(faultio.CrashPoint):
        scenario(img)
    shim.crash(mode, seed=seed, torn=torn)
    faultio.abandon(img)


def assert_recovers(cache_path: str, context: str) -> None:
    """The post-crash invariants, checked on a fresh open."""
    with Qcow2Image.open(cache_path, read_only=False) as img:
        report = img.check()
        assert report.ok, (context, report.errors[:3])
        got = img.read(0, BASE_SIZE)
        assert got == pattern(0, BASE_SIZE), (context, "data mismatch")
        assert img.physical_size <= QUOTA, context
        ext = img.header.cache_ext
        assert ext.current_size <= QUOTA, context
    # And the image it left behind is clean for the next open too.
    assert not Qcow2Image.peek_header(cache_path).is_dirty, context


def sweep_points(total: int) -> list[int]:
    """Kill points to test: all of them in the full sweep, a strided
    sample (ends always included) in the tier-1 smoke run."""
    if total <= 0:
        return []
    if FULL_SWEEP:
        return list(range(1, total + 1))
    stride = max(1, total // 6)
    points = sorted({1, 2, total - 1, total,
                     *range(1, total + 1, stride)})
    return [p for p in points if 1 <= p <= total]


class TestCrashMatrixSmoke:
    """Tier-1: strided kill points, cheap modes — always runs."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_write_kill_points(self, tmp_path, crash_base, name):
        scenario = SCENARIOS[name]
        writes, _syncs = faultio.count_ops(
            scenario,
            lambda: Qcow2Image.open(
                make_cache(tmp_path, crash_base, f"{name}-dry"),
                read_only=False, sync="barrier"))
        assert writes > 0
        for k in sweep_points(writes):
            for mode in ("drop-all", "keep-last"):
                tag = f"{name}-w{k}-{mode}"
                path = make_cache(tmp_path, crash_base, tag)
                run_killed(path, scenario, mode=mode,
                           kill_after_writes=k)
                assert_recovers(path, tag)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_sync_kill_points_with_torn_writes(self, tmp_path,
                                               crash_base, name):
        scenario = SCENARIOS[name]
        _writes, syncs = faultio.count_ops(
            scenario,
            lambda: Qcow2Image.open(
                make_cache(tmp_path, crash_base, f"{name}-sdry"),
                read_only=False, sync="barrier"))
        assert syncs > 0  # barrier mode must be issuing barriers
        for s in range(1, syncs + 1):
            tag = f"{name}-s{s}"
            path = make_cache(tmp_path, crash_base, tag)
            run_killed(path, scenario, mode="keep-last", torn=True,
                       kill_on_sync=s)
            assert_recovers(path, tag)

    def test_crash_before_any_sync_leaves_base_intact(self, tmp_path,
                                                      crash_base):
        """Kill at the very first write: recovery must yield an image
        indistinguishable from a never-used cache."""
        path = make_cache(tmp_path, crash_base, "first")
        run_killed(path, scenario_cor_fill, mode="drop-all",
                   kill_after_writes=1)
        assert_recovers(path, "first-write")


@pytest.mark.crashmatrix
@pytest.mark.skipif(not FULL_SWEEP,
                    reason="set REPRO_CRASH_MATRIX=1 for the full sweep")
class TestCrashMatrixFull:
    """Exhaustive: every kill point x every crash mode x torn/seeded."""

    @pytest.mark.timeout(600)
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_exhaustive(self, tmp_path, crash_base, name):
        scenario = SCENARIOS[name]
        writes, syncs = faultio.count_ops(
            scenario,
            lambda: Qcow2Image.open(
                make_cache(tmp_path, crash_base, f"{name}-dry"),
                read_only=False, sync="barrier"))
        for k in range(1, writes + 1):
            for mode in faultio.CRASH_MODES:
                for torn in (False, True):
                    seeds = (0, 1) if mode == "subset" else (0,)
                    for seed in seeds:
                        tag = f"{name}-w{k}-{mode}-t{torn}-{seed}"
                        path = make_cache(tmp_path, crash_base, tag)
                        run_killed(path, scenario, mode=mode,
                                   seed=seed, torn=torn,
                                   kill_after_writes=k)
                        assert_recovers(path, tag)
        for s in range(1, syncs + 1):
            for mode in faultio.CRASH_MODES:
                tag = f"{name}-s{s}-{mode}"
                path = make_cache(tmp_path, crash_base, tag)
                run_killed(path, scenario, mode=mode, seed=s,
                           torn=True, kill_on_sync=s)
                assert_recovers(path, tag)
