"""Tests for the §8 deduplication analysis over cache images."""

import pytest

from repro.imagefmt.chain import create_cache_chain
from repro.imagefmt.dedup import (
    analyze_dedup,
    content_fingerprints,
    cross_image_shared_bytes,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB, MiB

from tests.conftest import pattern

CHUNK = 4096


def warmed_cache(tmp_path, base_path, tag, ranges, quota=4 * MiB):
    """Create a cache and warm it by reading given (offset, len) ranges."""
    cache_p = str(tmp_path / f"cache-{tag}.qcow2")
    cow_p = str(tmp_path / f"cow-{tag}.qcow2")
    with create_cache_chain(base_path, cache_p, cow_p,
                            quota=quota) as chain:
        for offset, length in ranges:
            chain.read(offset, length)
    return Qcow2Image.open(cache_p, read_only=True, open_backing=False)


@pytest.fixture
def shared_base(tmp_path):
    """A base image with a repetitive 'distro' region and a unique one."""
    p = str(tmp_path / "base.raw")
    img = RawImage.create(p, 4 * MiB)
    img.write(0, bytes(range(256)) * (256 * KiB // 256))   # repetitive
    img.write(1 * MiB, pattern(1 * MiB, 256 * KiB))        # unique
    img.close()
    return p


class TestFingerprints:
    def test_counts_only_allocated(self, tmp_path, shared_base):
        cache = warmed_cache(tmp_path, shared_base, "a",
                             [(0, 64 * KiB)])
        with cache:
            fps = content_fingerprints(cache, CHUNK)
        assert sum(fps.values()) == 64 * KiB // CHUNK

    def test_repetitive_content_collapses(self, tmp_path, shared_base):
        cache = warmed_cache(tmp_path, shared_base, "b",
                             [(0, 64 * KiB)])  # 256-byte period data
        with cache:
            fps = content_fingerprints(cache, CHUNK)
        # All chunks identical -> one unique digest.
        assert len(fps) == 1

    def test_unique_content_does_not(self, tmp_path, shared_base):
        cache = warmed_cache(tmp_path, shared_base, "c",
                             [(1 * MiB, 64 * KiB)])
        with cache:
            fps = content_fingerprints(cache, CHUNK)
        assert len(fps) == 64 * KiB // CHUNK

    def test_invalid_chunk_size(self, tmp_path, shared_base):
        cache = warmed_cache(tmp_path, shared_base, "d", [(0, CHUNK)])
        with cache:
            with pytest.raises(ValueError):
                content_fingerprints(cache, 3000)


class TestAnalyzeDedup:
    def test_two_caches_of_same_vmi_fully_shared(self, tmp_path,
                                                 shared_base):
        a = warmed_cache(tmp_path, shared_base, "x",
                         [(1 * MiB, 128 * KiB)])
        b = warmed_cache(tmp_path, shared_base, "y",
                         [(1 * MiB, 128 * KiB)])
        with a, b:
            report = analyze_dedup([a, b], CHUNK)
        # Same VMI, same boot -> the second copy is pure duplication.
        assert report.total_bytes == 2 * report.unique_bytes
        assert report.dedup_ratio == pytest.approx(2.0)
        assert report.savings_fraction == pytest.approx(0.5)

    def test_disjoint_content_no_savings(self, tmp_path, shared_base):
        a = warmed_cache(tmp_path, shared_base, "p",
                         [(1 * MiB, 64 * KiB)])
        b = warmed_cache(tmp_path, shared_base, "q",
                         [(1 * MiB + 128 * KiB, 64 * KiB)])
        with a, b:
            report = analyze_dedup([a, b], CHUNK)
        assert report.duplicate_bytes == 0
        assert report.dedup_ratio == 1.0

    def test_per_image_accounting(self, tmp_path, shared_base):
        a = warmed_cache(tmp_path, shared_base, "r",
                         [(1 * MiB, 64 * KiB)])
        with a:
            report = analyze_dedup([a], CHUNK)
            assert report.per_image_allocated[a.path] == 64 * KiB

    def test_empty_input(self):
        with pytest.raises(ValueError):
            analyze_dedup([])


class TestCrossImage:
    def test_overlap_measured(self, tmp_path, shared_base):
        a = warmed_cache(tmp_path, shared_base, "m",
                         [(1 * MiB, 128 * KiB)])
        b = warmed_cache(tmp_path, shared_base, "n",
                         [(1 * MiB + 64 * KiB, 128 * KiB)])
        with a, b:
            shared = cross_image_shared_bytes(a, b, CHUNK)
        assert shared == 64 * KiB

    def test_distro_siblings_share_template_content(self, tmp_path):
        """Two 'VMIs derived from the same distribution' (§7.3): their
        caches share the template part of the content."""
        template = bytes(range(256)) * (512 * KiB // 256)
        bases = []
        for i in range(2):
            p = str(tmp_path / f"distro{i}.raw")
            img = RawImage.create(p, 4 * MiB)
            img.write(0, template)                  # shared distro files
            img.write(2 * MiB, pattern(0, 128 * KiB, seed=i))  # user data
            img.close()
            bases.append(p)
        caches = [
            warmed_cache(tmp_path, bases[i], f"d{i}",
                         [(0, 512 * KiB), (2 * MiB, 128 * KiB)])
            for i in range(2)
        ]
        with caches[0], caches[1]:
            report = analyze_dedup(caches, CHUNK)
        # The 512 KiB template appears in both caches and is internally
        # repetitive; the per-user 128 KiB parts are unique.
        assert report.savings_fraction > 0.5
