"""Edge cases of the driver base layer and format registry."""

import pytest

from repro.errors import InvalidImageError
from repro.imagefmt.driver import open_image, probe_format
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB, MiB


class TestRegistry:
    def test_probe_qcow2(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, MiB).close()
        assert probe_format(p) == "qcow2"

    def test_open_image_autodetects(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, MiB).close()
        with open_image(p) as img:
            assert img.format_name == "qcow2"

    def test_explicit_format_honoured(self, tmp_path):
        # A qcow2 file force-opened as raw: its literal bytes.
        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, MiB).close()
        with open_image(p, "raw") as img:
            assert img.format_name == "raw"
            assert img.read(0, 4)[:4] == b"QFI\xfb"

    def test_unknown_format_rejected(self, tmp_path, small_base):
        with pytest.raises(InvalidImageError):
            open_image(small_base, "vhdx")

    def test_raw_driver_rejects_stray_options(self, small_base):
        with pytest.raises(InvalidImageError):
            open_image(small_base, "raw", open_backing=True)

    def test_empty_file_probes_as_raw(self, tmp_path):
        p = str(tmp_path / "empty")
        open(p, "wb").close()
        assert probe_format(p) == "raw"


class TestVirtualSizeEdges:
    def test_zero_size_image(self, tmp_path):
        p = str(tmp_path / "zero.qcow2")
        with Qcow2Image.create(p, 0) as img:
            assert img.size == 0
            assert img.read(0, 0) == b""
        with Qcow2Image.open(p) as img:
            assert img.check().ok

    def test_one_byte_image(self, tmp_path):
        p = str(tmp_path / "one.qcow2")
        with Qcow2Image.create(p, 1, cluster_size=512) as img:
            img.write(0, b"Z")
            assert img.read(0, 1) == b"Z"

    def test_non_cluster_multiple_size(self, tmp_path):
        size = 3 * 64 * KiB + 777
        p = str(tmp_path / "odd.qcow2")
        with Qcow2Image.create(p, size) as img:
            img.write(size - 10, b"0123456789")
        with Qcow2Image.open(p) as img:
            assert img.read(size - 10, 10) == b"0123456789"
            assert img.check().ok

    def test_raw_zero_size(self, tmp_path):
        with RawImage.create(str(tmp_path / "z.raw"), 0) as img:
            assert img.size == 0


class TestReprs:
    def test_driver_repr_states(self, tmp_path):
        p = str(tmp_path / "a.raw")
        img = RawImage.create(p, 1024)
        assert "rw" in repr(img)
        img.close()
        assert "closed" in repr(img)
        ro = RawImage.open(p)
        assert "ro" in repr(ro)
        ro.close()
