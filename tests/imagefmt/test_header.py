"""Tests for QCowHeader serialization and the cache header extension."""

import struct

import pytest

from repro.errors import InvalidImageError, UnsupportedFeatureError
from repro.imagefmt.constants import (
    HEADER_SIZE_V2,
    HEXT_VMI_CACHE,
    QCOW_MAGIC,
    QCOW_VERSION,
)
from repro.imagefmt.header import (
    CacheExtension,
    HeaderExtension,
    QCowHeader,
)


def roundtrip(header: QCowHeader) -> QCowHeader:
    return QCowHeader.decode(header.encode() + b"\0" * 64)


class TestHeaderRoundtrip:
    def test_minimal(self):
        h = QCowHeader(size=1 << 30, cluster_bits=16, l1_size=16,
                       l1_table_offset=65536,
                       refcount_table_offset=131072,
                       refcount_table_clusters=1)
        out = roundtrip(h)
        assert out.size == h.size
        assert out.cluster_bits == 16
        assert out.l1_size == 16
        assert out.l1_table_offset == 65536
        assert out.backing_file is None
        assert out.cache_ext is None

    def test_with_backing(self):
        h = QCowHeader(size=123456, cluster_bits=9,
                       backing_file="/some/dir/base.raw",
                       backing_format="raw")
        out = roundtrip(h)
        assert out.backing_file == "/some/dir/base.raw"
        assert out.backing_format == "raw"

    def test_with_cache_extension(self):
        h = QCowHeader(size=1 << 30, cluster_bits=9,
                       backing_file="base.raw",
                       cache_ext=CacheExtension(quota=200_000_000,
                                                current_size=4096))
        out = roundtrip(h)
        assert out.is_cache
        assert out.cache_ext.quota == 200_000_000
        assert out.cache_ext.current_size == 4096

    def test_unicode_backing_name(self):
        h = QCowHeader(size=512, cluster_bits=9,
                       backing_file="bäse-ïmage.qcow2")
        assert roundtrip(h).backing_file == "bäse-ïmage.qcow2"

    def test_unknown_extension_preserved(self):
        h = QCowHeader(size=512, cluster_bits=9)
        h.unknown_extensions.append(HeaderExtension(0xDEADBEEF, b"xyzzy"))
        out = roundtrip(h)
        assert out.unknown_extensions == [
            HeaderExtension(0xDEADBEEF, b"xyzzy")]

    def test_is_cache_property(self):
        h = QCowHeader(size=512, cluster_bits=9)
        assert not h.is_cache
        h.cache_ext = CacheExtension(quota=1, current_size=0)
        assert h.is_cache

    def test_magic_and_version_on_disk(self):
        blob = QCowHeader(size=512, cluster_bits=9).encode()
        magic, version = struct.unpack_from(">II", blob, 0)
        assert magic == QCOW_MAGIC
        assert version == QCOW_VERSION

    def test_cache_ext_on_disk_encoding(self):
        """The extension must be exactly two big-endian u64 fields."""
        blob = QCowHeader(
            size=512, cluster_bits=9, backing_file="b",
            cache_ext=CacheExtension(quota=0x0102030405060708,
                                     current_size=0x1112131415161718),
        ).encode()
        idx = blob.find(struct.pack(">I", HEXT_VMI_CACHE))
        assert idx >= HEADER_SIZE_V2
        ext_len = struct.unpack_from(">I", blob, idx + 4)[0]
        assert ext_len == 16
        quota, cur = struct.unpack_from(">QQ", blob, idx + 8)
        assert quota == 0x0102030405060708
        assert cur == 0x1112131415161718


class TestHeaderValidation:
    def test_bad_magic(self):
        blob = bytearray(QCowHeader(size=512, cluster_bits=9).encode())
        blob[0] = 0x00
        with pytest.raises(InvalidImageError):
            QCowHeader.decode(bytes(blob))

    def test_bad_version(self):
        blob = bytearray(QCowHeader(size=512, cluster_bits=9).encode())
        struct.pack_into(">I", blob, 4, 3)
        with pytest.raises(UnsupportedFeatureError):
            QCowHeader.decode(bytes(blob))

    def test_bad_cluster_bits(self):
        blob = bytearray(QCowHeader(size=512, cluster_bits=9).encode())
        struct.pack_into(">I", blob, 20, 5)
        with pytest.raises(InvalidImageError):
            QCowHeader.decode(bytes(blob))

    def test_truncated(self):
        with pytest.raises(InvalidImageError):
            QCowHeader.decode(b"\x51\x46\x49\xfb")

    def test_encrypted_rejected(self):
        blob = bytearray(QCowHeader(size=512, cluster_bits=9).encode())
        struct.pack_into(">I", blob, 32, 1)  # crypt_method = AES
        with pytest.raises(UnsupportedFeatureError):
            QCowHeader.decode(bytes(blob))

    def test_snapshots_rejected(self):
        blob = bytearray(QCowHeader(size=512, cluster_bits=9).encode())
        struct.pack_into(">I", blob, 60, 2)  # nb_snapshots
        with pytest.raises(UnsupportedFeatureError):
            QCowHeader.decode(bytes(blob))

    def test_backing_name_out_of_bounds(self):
        h = QCowHeader(size=512, cluster_bits=9, backing_file="base")
        blob = h.encode()
        with pytest.raises(InvalidImageError):
            QCowHeader.decode(blob[:-2])

    def test_malformed_cache_ext_length(self):
        with pytest.raises(InvalidImageError):
            CacheExtension.decode(b"\0" * 8)


class TestCacheExtension:
    def test_roundtrip(self):
        ext = CacheExtension(quota=93 * 1000 * 1000, current_size=12345)
        assert CacheExtension.decode(ext.encode()) == ext

    def test_encode_size(self):
        assert len(CacheExtension(quota=1, current_size=2).encode()) == 16
