"""tools/img_check.py: the fsck CLI over real image files.

Runs the tool as a subprocess (exactly as an operator would) and
asserts the exit-code contract: 0 clean, 1 unopenable, 2 corruption,
3 leaks — and that ``--repair`` turns a 2 into a later 0.
"""

from __future__ import annotations

import json
import os
import struct
import subprocess
import sys

import pytest

from repro.imagefmt import constants as C
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern

ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
TOOL = os.path.join(ROOT, "tools", "img_check.py")


def run_tool(*args: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True, text=True, timeout=60)
    return proc.returncode, proc.stdout


@pytest.fixture
def clean_image(tmp_path):
    p = str(tmp_path / "clean.qcow2")
    with Qcow2Image.create(p, 1 * MiB) as img:
        img.write(0, pattern(0, 16 * KiB))
    return p


class TestImgCheckTool:
    def test_clean_qcow2_exits_zero(self, clean_image):
        code, out = run_tool(clean_image)
        assert code == 0, out
        assert "clean" in out

    def test_raw_image_handled(self, tmp_path):
        p = str(tmp_path / "base.raw")
        RawImage.create(p, 64 * KiB).close()
        code, out = run_tool(p)
        assert code == 0, out
        assert "clean (raw)" in out

    def test_many_images_one_run(self, tmp_path, clean_image):
        raw = str(tmp_path / "b.raw")
        RawImage.create(raw, 64 * KiB).close()
        code, out = run_tool(clean_image, raw)
        assert code == 0
        assert out.count(": clean (") == 2

    def test_unopenable_exits_one(self, tmp_path):
        p = str(tmp_path / "gone.qcow2")
        code, out = run_tool(p)
        assert code == 1
        assert "OPEN FAILED" in out

    def test_dirty_image_exits_two_then_repair(self, tmp_path):
        base = make_patterned_base(tmp_path / "b.raw", size=64 * KiB)
        p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(p, backing_file=base, cluster_size=512,
                          cache_quota=MiB).close()
        with Qcow2Image.open(p, read_only=False) as img:
            img.read(0, 8 * KiB)
        header = Qcow2Image.peek_header(p)
        header.incompatible_features |= C.FEATURE_DIRTY
        with open(p, "r+b") as f:
            f.write(header.encode())

        code, out = run_tool(p)
        assert code == 2
        assert "dirty" in out

        code, out = run_tool("--repair", p)
        assert code == 0, out

        code, _ = run_tool(p)
        assert code == 0

    def test_corrupt_refcount_detect_and_repair_json(self, clean_image):
        with Qcow2Image.open(clean_image, read_only=False,
                             open_backing=False) as img:
            data_off = next(
                e & C.L2E_OFFSET_MASK
                for e in img._load_l2(0) if e)
            img._alloc.set_refcount(
                data_off // img.cluster_size, 0)
            img._alloc.flush_refcounts()
            img.closed = True
            img._f.close()

        code, out = run_tool("--json", clean_image)
        assert code == 2
        doc = json.loads(out)
        assert doc["clean"] is False
        assert doc["images"][0]["errors"]

        code, out = run_tool("--json", "--repair", clean_image)
        assert code == 0, out
        doc = json.loads(out)
        assert doc["clean"] is True
        assert doc["images"][0]["repairs"]

    def test_stale_cache_size_detected(self, tmp_path):
        base = make_patterned_base(tmp_path / "b.raw", size=64 * KiB)
        p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(p, backing_file=base, cluster_size=512,
                          cache_quota=MiB).close()
        header = Qcow2Image.peek_header(p)
        header.cache_ext.current_size += 512
        with open(p, "r+b") as f:
            f.write(header.encode())
        code, out = run_tool(p)
        assert code == 2
        assert "stale" in out
        code, _ = run_tool("--repair", p)
        assert code == 0


class TestRepairViaReproImg:
    """The same knobs through the ``repro-img check`` subcommand."""

    def run_cli(self, capsys, *argv):
        from repro.imagefmt.qemu_img import main

        code = main(list(argv))
        out = capsys.readouterr().out
        return code, out

    def test_check_json(self, clean_image, capsys):
        code, out = self.run_cli(capsys, "check", "--json", clean_image)
        assert code == 0
        doc = json.loads(out)
        assert doc["errors"] == []
        assert doc["clean_after"] is True

    def test_check_repair(self, clean_image, capsys):
        # Cross-link two L2 entries, then repair through the CLI.
        with Qcow2Image.open(clean_image, read_only=False,
                             open_backing=False) as img:
            l2_off = img._l1[0] & C.L1E_OFFSET_MASK
            data_off = next(
                e & C.L2E_OFFSET_MASK for e in img._load_l2(0) if e)
        with open(clean_image, "r+b") as f:
            f.seek(l2_off + 8)
            f.write(struct.pack(">Q", data_off | C.OFLAG_COPIED))

        code, out = self.run_cli(capsys, "check", clean_image)
        assert code == 2
        assert "ERROR" in out

        code, out = self.run_cli(
            capsys, "check", "--repair", clean_image)
        assert code == 0
        assert "REPAIRED" in out

        code, _ = self.run_cli(capsys, "check", clean_image)
        assert code == 0
