"""Regression tests for the ISSUE 1 satellite bugfixes.

* ``Qcow2Image.create(size=None, backing_file=...)`` opened the
  backing image twice (two TCP connections for nbd:// backings);
* the ``_cor`` keyword on ``_write_impl`` was declared and passed but
  never read;
* ``check()`` re-read the whole refcount table from disk once per
  surplus cluster (O(clusters²)).
"""

from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import pattern


def _count_backing_opens(monkeypatch):
    """Patch _open_backing to count calls and capture returned drivers."""
    opened = []
    orig = Qcow2Image._open_backing.__func__

    def counting(cls, backing_path, backing_format):
        drv = orig(cls, backing_path, backing_format)
        opened.append(drv)
        return drv

    monkeypatch.setattr(Qcow2Image, "_open_backing", classmethod(counting))
    return opened


class TestCreateSingleBackingOpen:
    def test_size_inherited_with_one_open(self, tmp_path, small_base,
                                          monkeypatch):
        opened = _count_backing_opens(monkeypatch)
        img = Qcow2Image.create(str(tmp_path / "c.qcow2"),
                                backing_file=small_base)
        assert img.size == 4 * MiB
        assert len(opened) == 1          # was 2 before the fix
        assert img.backing is opened[0]  # ...and it is reused as-is
        img.close()

    def test_peeked_backing_closed_when_not_wanted(self, tmp_path,
                                                   small_base,
                                                   monkeypatch):
        opened = _count_backing_opens(monkeypatch)
        img = Qcow2Image.create(str(tmp_path / "c.qcow2"),
                                backing_file=small_base,
                                open_backing=False)
        assert img.size == 4 * MiB
        assert img.backing is None
        assert len(opened) == 1
        assert opened[0].closed  # the size-peek open must not leak
        img.close()

    def test_explicit_size_still_single_open(self, tmp_path, small_base,
                                             monkeypatch):
        opened = _count_backing_opens(monkeypatch)
        img = Qcow2Image.create(str(tmp_path / "c.qcow2"), size=2 * MiB,
                                backing_file=small_base)
        assert img.size == 2 * MiB
        assert len(opened) == 1
        img.close()


class TestCorAccounting:
    def test_cor_stats_recorded_by_write_impl(self, tmp_path, small_base):
        """CoR population is accounted where it happens (_write_impl with
        _cor=True), and only CoR writes land in the cor_* counters."""
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=small_base,
                          cluster_size=512,
                          cache_quota=2 * MiB).close()
        with Qcow2Image.open(cache_p, read_only=False) as cache:
            assert cache.read(0, 64 * KiB) == pattern(0, 64 * KiB)
            assert cache.stats.cor_write_ops >= 1
            assert cache.stats.cor_bytes_written >= 64 * KiB
            cor_before = cache.stats.cor_bytes_written
            # An external (guest) write must not count as CoR.
            cache.write(512 * KiB, b"\xaa" * 512)
            assert cache.stats.cor_bytes_written == cor_before


class TestCheckReadsRefcountTableOnce:
    def test_single_table_read_per_check(self, tmp_path, small_base,
                                         monkeypatch):
        import repro.imagefmt.refcount as refcount_mod

        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=small_base,
                          cluster_size=512,
                          cache_quota=2 * MiB).close()
        with Qcow2Image.open(cache_p, read_only=False) as cache:
            cache.read(0, 256 * KiB)  # populate plenty of clusters
            cache.flush()

            calls = []
            orig = refcount_mod.read_refcount_table

            def counting(*args, **kwargs):
                calls.append(1)
                return orig(*args, **kwargs)

            monkeypatch.setattr(refcount_mod, "read_refcount_table",
                                counting)
            report = cache.check()
            assert report.ok, report.errors
            # One read for the check itself (plus whatever the
            # allocator's load() does internally through its own path),
            # not one per allocated cluster.
            assert len(calls) <= 2
            assert report.allocated_clusters > 100
