"""Unit tests for the cluster allocator, refcount machinery, and the
positional-file wrapper."""

import os

import pytest

from repro.imagefmt.fileio import PositionalFile
from repro.imagefmt.layout import ClusterAllocator
from repro.imagefmt.refcount import (
    RefcountGeometry,
    read_refcount_block,
    read_refcount_table,
    write_refcount_block,
    write_refcount_table,
)
from repro.units import KiB


class TestPositionalFile:
    def test_create_write_read(self, tmp_path):
        p = str(tmp_path / "f.bin")
        f = PositionalFile.create(p)
        f.pwrite(b"hello", 100)
        assert f.pread(5, 100) == b"hello"
        assert f.size() == 105
        f.close()

    def test_read_past_eof_is_short(self, tmp_path):
        p = str(tmp_path / "f.bin")
        f = PositionalFile.create(p)
        f.pwrite(b"abc", 0)
        assert f.pread(10, 0) == b"abc"
        assert f.pread(10, 100) == b""
        f.close()

    def test_truncate_extends_sparse(self, tmp_path):
        p = str(tmp_path / "f.bin")
        f = PositionalFile.create(p)
        f.truncate(1 << 20)
        assert f.size() == 1 << 20
        assert f.pread(16, 12345) == b"\0" * 16
        f.close()

    def test_open_read_only(self, tmp_path):
        p = str(tmp_path / "f.bin")
        f = PositionalFile.create(p)
        f.pwrite(b"data", 0)
        f.close()
        ro = PositionalFile.open(p, read_only=True)
        assert ro.pread(4, 0) == b"data"
        with pytest.raises(OSError):
            ro.pwrite(b"x", 0)
        ro.close()

    def test_double_close(self, tmp_path):
        f = PositionalFile.create(str(tmp_path / "f.bin"))
        f.close()
        f.close()  # idempotent

    def test_create_truncates_existing(self, tmp_path):
        p = str(tmp_path / "f.bin")
        with open(p, "wb") as f:
            f.write(b"old content")
        f = PositionalFile.create(p)
        assert f.size() == 0
        f.close()


class TestRefcountGeometry:
    def test_paper_cluster_sizes(self):
        g512 = RefcountGeometry(9)
        assert g512.block_entries == 256      # 512 / 2
        assert g512.table_entries_per_cluster == 64
        g64k = RefcountGeometry(16)
        assert g64k.block_entries == 32768

    def test_indexing(self):
        g = RefcountGeometry(9)
        assert g.table_index(0) == 0
        assert g.table_index(255) == 0
        assert g.table_index(256) == 1
        assert g.block_index(257) == 1

    def test_coverage_roundtrip(self):
        g = RefcountGeometry(12)
        for n in (1, 100, 10_000):
            tables = g.table_clusters_for(n)
            assert g.clusters_covered(tables) >= n

    def test_minimum_one_table_cluster(self):
        assert RefcountGeometry(9).table_clusters_for(1) == 1


class TestRefcountIO:
    def test_table_roundtrip(self, tmp_path):
        f = PositionalFile.create(str(tmp_path / "t.bin"))
        write_refcount_table(f, 0, [512, 1024, 0, 2048], 1, 512)
        out = read_refcount_table(f, 0, 1, 512)
        assert out[:4] == [512, 1024, 0, 2048]
        assert len(out) == 64
        f.close()

    def test_table_overflow_rejected(self, tmp_path):
        f = PositionalFile.create(str(tmp_path / "t.bin"))
        with pytest.raises(ValueError):
            write_refcount_table(f, 0, [0] * 100, 1, 512)
        f.close()

    def test_sparse_table_reads_zero(self, tmp_path):
        f = PositionalFile.create(str(tmp_path / "t.bin"))
        f.truncate(100)  # shorter than one cluster
        out = read_refcount_table(f, 0, 1, 512)
        assert out == [0] * 64
        f.close()

    def test_block_roundtrip(self, tmp_path):
        f = PositionalFile.create(str(tmp_path / "b.bin"))
        counts = [0] * 256
        counts[3] = 7
        write_refcount_block(f, 512, counts, 512)
        assert read_refcount_block(f, 512, 512) == counts
        f.close()

    def test_block_wrong_length(self, tmp_path):
        f = PositionalFile.create(str(tmp_path / "b.bin"))
        with pytest.raises(ValueError):
            write_refcount_block(f, 0, [1, 2, 3], 512)
        f.close()


class TestClusterAllocator:
    def make(self, tmp_path, cluster_bits=9, rt_clusters=1):
        f = PositionalFile.create(str(tmp_path / "img.bin"))
        cs = 1 << cluster_bits
        initial = (1 + rt_clusters) * cs  # header + refcount table
        f.truncate(initial)
        alloc = ClusterAllocator(f, cluster_bits, initial, cs,
                                 rt_clusters)
        alloc._loaded = True
        alloc.mark_allocated(0, 1)
        alloc.mark_allocated(cs, rt_clusters)
        return f, alloc

    def test_alloc_is_sequential_at_eof(self, tmp_path):
        f, alloc = self.make(tmp_path)
        a = alloc.alloc(1)
        b = alloc.alloc(2)
        assert b == a + 512
        assert alloc.physical_size == b + 2 * 512

    def test_refcounts_tracked(self, tmp_path):
        f, alloc = self.make(tmp_path)
        off = alloc.alloc(3)
        first = off // 512
        for i in range(first, first + 3):
            assert alloc.refcount(i) == 1
        assert alloc.refcount(first + 3) == 0

    def test_alloc_zero_rejected(self, tmp_path):
        f, alloc = self.make(tmp_path)
        with pytest.raises(ValueError):
            alloc.alloc(0)

    def test_flush_persists_and_reloads(self, tmp_path):
        f, alloc = self.make(tmp_path)
        alloc.alloc(5)
        alloc.flush_refcounts()
        n_allocated = alloc.allocated_clusters()
        # Fresh allocator over the same file must agree.
        alloc2 = ClusterAllocator(f, 9, alloc.physical_size,
                                  alloc.refcount_table_offset,
                                  alloc.refcount_table_clusters)
        assert alloc2.allocated_clusters() == n_allocated
        f.close()

    def test_flush_idempotent(self, tmp_path):
        f, alloc = self.make(tmp_path)
        alloc.alloc(1)
        alloc.flush_refcounts()
        size = alloc.physical_size
        assert alloc.flush_refcounts() is False  # nothing dirty
        assert alloc.physical_size == size

    def test_table_growth(self, tmp_path):
        """Allocating past the initial table's coverage must grow it."""
        f, alloc = self.make(tmp_path, cluster_bits=9, rt_clusters=1)
        g = RefcountGeometry(9)
        coverage = g.clusters_covered(1)  # 64 * 256 clusters
        # Allocate past the coverage boundary.
        needed = coverage - alloc.physical_clusters + 10
        alloc.alloc(needed)
        changed = alloc.flush_refcounts()
        assert changed  # header must be rewritten
        assert alloc.refcount_table_clusters > 1
        assert g.clusters_covered(alloc.refcount_table_clusters) \
            >= alloc.physical_clusters
        # And the state is still self-consistent on reload.
        alloc2 = ClusterAllocator(f, 9, alloc.physical_size,
                                  alloc.refcount_table_offset,
                                  alloc.refcount_table_clusters)
        assert alloc2.allocated_clusters() > needed
        f.close()

    def test_file_size_settled_after_flush(self, tmp_path):
        f, alloc = self.make(tmp_path)
        alloc.alloc(7)
        alloc.flush_refcounts()
        assert f.size() == alloc.physical_size
        assert os.path.getsize(f.path) == alloc.physical_size
