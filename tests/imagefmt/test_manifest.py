"""Cluster-hash manifests: geometry, digests, serialization, dedup.

The manifest is peer fill's unit of trust (DESIGN.md §14), so the
contract under test is adversarial: unknown clusters must verify
False, tampered documents must be rejected loudly, and the
content-addressed index must re-verify bytes it hands out.
"""

import json

import pytest

from repro.imagefmt.manifest import (
    DEFAULT_CLUSTER_SIZE,
    MANIFEST_FORMAT,
    ClusterManifest,
    ContentIndex,
    ManifestBuilder,
    ManifestError,
    build_manifest,
    cluster_digest,
    manifest_path,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB, MiB

CL = 64 * KiB


def pattern(offset: int, length: int) -> bytes:
    blob = b"".join(b"%08x" % (i & 0xFFFFFFFF)
                    for i in range(offset // 8, (offset + length) // 8 + 2))
    return blob[offset % 8: offset % 8 + length]


class TestBuilder:
    def test_builds_digests_per_cluster(self):
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        added = b.add_extent(0, pattern(0, 2 * CL))
        assert added == 2
        b.add_extent(3 * CL, pattern(3 * CL, CL))
        m = b.build()
        assert sorted(m.digests) == [0, 1, 3]
        assert m.digests[0] == cluster_digest(pattern(0, CL))
        assert m.digests[1] == cluster_digest(pattern(CL, CL))
        assert 2 not in m

    def test_last_write_wins(self):
        b = ManifestBuilder("vmi-a", 2 * CL, CL)
        b.add_extent(0, b"\x01" * CL)
        b.add_extent(0, b"\x02" * CL)
        assert b.build().digests[0] == cluster_digest(b"\x02" * CL)

    def test_partial_tail_allowed(self):
        size = CL + 100
        b = ManifestBuilder("vmi-a", size, CL)
        b.add_extent(CL, b"\x07" * 100)  # the image tail, sub-cluster
        m = b.build()
        assert m.verify_cluster(1, b"\x07" * 100)
        assert m.cluster_extent(1) == (CL, 100)

    def test_unaligned_offset_rejected(self):
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        with pytest.raises(ManifestError, match="not cluster-aligned"):
            b.add_extent(100, b"\0" * CL)

    def test_unaligned_end_rejected(self):
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        with pytest.raises(ManifestError, match="neither"):
            b.add_extent(0, b"\0" * (CL + 5))

    def test_extent_past_image_rejected(self):
        b = ManifestBuilder("vmi-a", CL, CL)
        with pytest.raises(ManifestError, match="beyond"):
            b.add_extent(0, b"\0" * 2 * CL)

    def test_bad_cluster_size_rejected(self):
        with pytest.raises(ManifestError, match="power of two"):
            ManifestBuilder("vmi-a", CL, CL + 1)


class TestVerification:
    def make(self) -> ClusterManifest:
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        b.add_extent(0, pattern(0, 4 * CL))
        return b.build()

    def test_verify_matches(self):
        m = self.make()
        assert m.verify_cluster(2, pattern(2 * CL, CL))

    def test_verify_rejects_wrong_bytes(self):
        m = self.make()
        assert not m.verify_cluster(2, b"\0" * CL)

    def test_unknown_cluster_verifies_false(self):
        """Absence is not trust: an unmanifested index never passes."""
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        b.add_extent(0, pattern(0, CL))
        m = b.build()
        assert not m.verify_cluster(3, pattern(3 * CL, CL))

    def test_missing_in_and_common_with(self):
        full = self.make()
        b = ManifestBuilder("vmi-b", 4 * CL, CL)
        b.add_extent(0, pattern(0, CL))          # identical to full[0]
        b.add_extent(CL, b"\xff" * CL)           # differs from full[1]
        partial = b.build()
        assert full.missing_in(partial) == [1, 2, 3]
        assert full.common_with(partial) == [0]

    def test_populated_bytes_counts_tail(self):
        size = CL + 100
        b = ManifestBuilder("vmi-a", size, CL)
        b.add_extent(0, pattern(0, size))
        assert b.build().populated_bytes == size


class TestSerialization:
    def make(self) -> ClusterManifest:
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        b.add_extent(0, pattern(0, 3 * CL))
        return b.build()

    def test_roundtrip(self):
        m = self.make()
        again = ClusterManifest.from_bytes(m.to_bytes())
        assert again == m
        assert again.content_id == m.content_id

    def test_content_id_is_content_addressed(self):
        m1 = self.make()
        m2 = self.make()
        assert m1.content_id == m2.content_id
        b = ManifestBuilder("vmi-a", 4 * CL, CL)
        b.add_extent(0, pattern(0, 2 * CL))
        assert b.build().content_id != m1.content_id

    def test_rejects_wrong_format_tag(self):
        doc = json.loads(self.make().to_bytes())
        doc["format"] = "something-else/9"
        with pytest.raises(ManifestError, match=MANIFEST_FORMAT):
            ClusterManifest.from_bytes(json.dumps(doc).encode())

    def test_rejects_garbage(self):
        with pytest.raises(ManifestError):
            ClusterManifest.from_bytes(b"\x00\x01not json")

    def test_rejects_out_of_range_index(self):
        doc = json.loads(self.make().to_bytes())
        doc["digests"]["99"] = "ab" * 32
        with pytest.raises(ManifestError, match="outside"):
            ClusterManifest.from_bytes(json.dumps(doc).encode())

    def test_save_load_next_to_cache(self, tmp_path):
        m = self.make()
        cache = str(tmp_path / "cache.qcow2")
        path = m.save(cache_path=cache)
        assert path == manifest_path(cache)
        assert ClusterManifest.load(path) == m

    def test_save_needs_exactly_one_path(self, tmp_path):
        m = self.make()
        with pytest.raises(ValueError):
            m.save()
        with pytest.raises(ValueError):
            m.save(str(tmp_path / "x"), cache_path=str(tmp_path / "y"))


class TestBuildManifest:
    def test_scan_matches_incremental(self, tmp_path):
        """A scan of the written image and the build-time digests must
        agree — the peer-fill verifier depends on it."""
        size = 2 * MiB
        img = RawImage.create(str(tmp_path / "b.raw"), size)
        img.write(0, pattern(0, size))
        scanned = build_manifest(img, vmi_id="vmi-a", cluster_size=CL)
        img.close()
        b = ManifestBuilder("vmi-a", size, CL)
        b.add_extent(0, pattern(0, size))
        assert scanned.digests == b.build().digests

    def test_qcow2_manifests_only_allocated(self, tmp_path):
        img = Qcow2Image.create(str(tmp_path / "c.qcow2"), 4 * MiB,
                                cluster_size=CL)
        img.write(0, pattern(0, CL))
        img.write(10 * CL, pattern(10 * CL, CL))
        m = build_manifest(img, vmi_id="vmi-c")
        img.close()
        assert m.cluster_size == CL
        assert set(m.digests) == {0, 10}

    def test_default_cluster_size_for_plain_readers(self, tmp_path):
        img = RawImage.create(str(tmp_path / "d.raw"), 256 * KiB)
        m = build_manifest(img, vmi_id="vmi-d")
        img.close()
        assert m.cluster_size == DEFAULT_CLUSTER_SIZE


class TestContentIndex:
    def test_cross_image_dedup_hit(self):
        """Identical clusters of *different* VMIs resolve by content."""
        shared = pattern(0, CL)
        store_a = shared + b"\xaa" * CL
        b = ManifestBuilder("vmi-a", 2 * CL, CL)
        b.add_extent(0, store_a)
        index = ContentIndex()
        index.add_manifest(b.build(),
                           lambda off, ln: store_a[off:off + ln])
        wanted = ManifestBuilder("vmi-b", CL, CL)
        wanted.add_extent(0, shared)
        digest = wanted.build().digests[0]
        assert index.fetch(digest) == shared
        assert index.hits == 1

    def test_miss_counts(self):
        index = ContentIndex()
        assert index.fetch("00" * 32) is None
        assert index.misses == 1

    def test_stale_backing_reverifies(self):
        """The indexed cache changed after indexing: the index must
        miss, never hand out bytes that no longer match the digest."""
        store = bytearray(pattern(0, CL))
        b = ManifestBuilder("vmi-a", CL, CL)
        b.add_extent(0, bytes(store))
        m = b.build()
        index = ContentIndex()
        index.add_manifest(m, lambda off, ln: bytes(store[off:off + ln]))
        store[0] ^= 0xFF  # mutate after indexing
        assert index.fetch(m.digests[0]) is None

    def test_broken_reader_tolerated(self):
        def boom(off, ln):
            raise OSError("gone")

        b = ManifestBuilder("vmi-a", CL, CL)
        b.add_extent(0, pattern(0, CL))
        m = b.build()
        index = ContentIndex()
        index.add_manifest(m, boom)
        assert index.fetch(m.digests[0]) is None
