"""Property-based tests (hypothesis) on image-format invariants.

Core invariants:
* read-after-write: an image behaves like a flat byte array, regardless
  of cluster size, operation order, or backing chains;
* chain transparency: a CoW or cache overlay never changes what the
  guest observes;
* quota safety: a cache file never outgrows its quota, no matter the
  read pattern;
* cache immutability: populating a cache never changes guest-visible
  content.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.imagefmt.chain import create_cache_chain, create_cow_chain
from repro.imagefmt.header import CacheExtension, QCowHeader
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.units import KiB

from tests.conftest import pattern

VIRTUAL_SIZE = 256 * KiB

ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=VIRTUAL_SIZE - 1),
        st.integers(min_value=0, max_value=4 * KiB),
    ),
    min_size=1,
    max_size=30,
)

cluster_sizes = st.sampled_from([512, 1024, 4096, 64 * KiB])


def clamp(offset: int, length: int) -> int:
    return min(length, VIRTUAL_SIZE - offset)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=ops, cluster_size=cluster_sizes, data=st.data())
def test_image_behaves_like_flat_bytearray(tmp_path, ops, cluster_size,
                                           data):
    """Oracle test: qcow2 vs a plain bytearray under random op sequences."""
    path = str(tmp_path / f"img-{os.getpid()}-{id(ops)}.qcow2")
    oracle = bytearray(VIRTUAL_SIZE)
    with Qcow2Image.create(path, VIRTUAL_SIZE,
                           cluster_size=cluster_size) as img:
        for kind, offset, length in ops:
            length = clamp(offset, length)
            if kind == "read":
                assert img.read(offset, length) == \
                    bytes(oracle[offset: offset + length])
            else:
                payload = bytes(data.draw(st.binary(
                    min_size=length, max_size=length)))
                img.write(offset, payload)
                oracle[offset: offset + length] = payload
        # Full sweep at the end.
        assert img.read(0, VIRTUAL_SIZE) == bytes(oracle)
    os.unlink(path)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(reads=st.lists(
    st.tuples(st.integers(0, VIRTUAL_SIZE - 1),
              st.integers(1, 8 * KiB)),
    min_size=1, max_size=20),
    cache_cluster=st.sampled_from([512, 4096, 64 * KiB]))
def test_chain_transparency(tmp_path, reads, cache_cluster):
    """Reading through base ← cache ← CoW equals reading the base,
    for any read pattern and any cache cluster size."""
    tag = f"{abs(hash((tuple(reads), cache_cluster)))}"
    base_p = str(tmp_path / f"base-{tag}.raw")
    base = RawImage.create(base_p, VIRTUAL_SIZE)
    base.write(0, pattern(0, VIRTUAL_SIZE, seed=7))
    base.close()
    cow = create_cache_chain(
        base_p,
        str(tmp_path / f"cache-{tag}.qcow2"),
        str(tmp_path / f"cow-{tag}.qcow2"),
        quota=VIRTUAL_SIZE * 2,
        cache_cluster_size=cache_cluster,
    )
    with cow:
        for offset, length in reads:
            length = clamp(offset, length)
            assert cow.read(offset, length) == \
                pattern(offset, length, seed=7)
    for f in os.listdir(tmp_path):
        if tag in f:
            os.unlink(os.path.join(tmp_path, f))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(reads=st.lists(
    st.tuples(st.integers(0, VIRTUAL_SIZE - 1),
              st.integers(1, 16 * KiB)),
    min_size=1, max_size=25),
    quota_kib=st.integers(min_value=24, max_value=256))
def test_quota_never_exceeded(tmp_path, reads, quota_kib):
    """However the guest reads, the cache file stays within quota and
    the data stays correct."""
    tag = f"{abs(hash((tuple(reads), quota_kib)))}"
    base_p = str(tmp_path / f"base-{tag}.raw")
    base = RawImage.create(base_p, VIRTUAL_SIZE)
    base.write(0, pattern(0, VIRTUAL_SIZE, seed=3))
    base.close()
    quota = quota_kib * KiB
    cache_p = str(tmp_path / f"cache-{tag}.qcow2")
    cow = create_cache_chain(
        base_p, cache_p, str(tmp_path / f"cow-{tag}.qcow2"),
        quota=quota,
    )
    with cow:
        for offset, length in reads:
            length = clamp(offset, length)
            assert cow.read(offset, length) == \
                pattern(offset, length, seed=3)
    assert os.path.getsize(cache_p) <= quota
    for f in os.listdir(tmp_path):
        if tag in f:
            os.unlink(os.path.join(tmp_path, f))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(boot_reads=st.lists(
    st.tuples(st.integers(0, VIRTUAL_SIZE - 1),
              st.integers(1, 4 * KiB)),
    min_size=1, max_size=15),
    guest_writes=st.lists(
    st.tuples(st.integers(0, VIRTUAL_SIZE - 1),
              st.integers(1, 4 * KiB)),
    min_size=1, max_size=10))
def test_cache_immutable_under_guest_writes(tmp_path, boot_reads,
                                            guest_writes):
    """Guest writes through the CoW never alter the cache image; a fresh
    VM chained to the same cache sees pristine base content."""
    tag = f"{abs(hash((tuple(boot_reads), tuple(guest_writes))))}"
    base_p = str(tmp_path / f"base-{tag}.raw")
    base = RawImage.create(base_p, VIRTUAL_SIZE)
    base.write(0, pattern(0, VIRTUAL_SIZE, seed=9))
    base.close()
    cache_p = str(tmp_path / f"cache-{tag}.qcow2")
    with create_cache_chain(
            base_p, cache_p, str(tmp_path / f"cow1-{tag}.qcow2"),
            quota=VIRTUAL_SIZE * 2) as cow1:
        for offset, length in boot_reads:
            cow1.read(offset, clamp(offset, length))
        for offset, length in guest_writes:
            cow1.write(offset, b"\xAA" * clamp(offset, length))
    with create_cache_chain(
            base_p, cache_p, str(tmp_path / f"cow2-{tag}.qcow2"),
            quota=VIRTUAL_SIZE * 2) as cow2:
        assert cow2.read(0, VIRTUAL_SIZE) == \
            pattern(0, VIRTUAL_SIZE, seed=9)
    for f in os.listdir(tmp_path):
        if tag in f:
            os.unlink(os.path.join(tmp_path, f))


@given(quota=st.integers(0, 2**63 - 1),
       current=st.integers(0, 2**63 - 1),
       size=st.integers(0, 2**40),
       cluster_bits=st.integers(9, 21))
@settings(max_examples=100, deadline=None)
def test_header_roundtrip_property(quota, current, size, cluster_bits):
    h = QCowHeader(size=size, cluster_bits=cluster_bits,
                   backing_file="b.raw",
                   cache_ext=CacheExtension(quota=quota,
                                            current_size=current))
    out = QCowHeader.decode(h.encode())
    assert out.size == size
    assert out.cluster_bits == cluster_bits
    assert out.cache_ext.quota == quota
    assert out.cache_ext.current_size == current
