"""Tests for the QCOW2 driver without cache semantics: creation, COW
reads/writes, backing chains, persistence, metadata integrity."""

import os

import pytest

from repro.errors import (
    BackingChainError,
    OutOfBoundsError,
    ReadOnlyImageError,
)
from repro.imagefmt.chain import create_cow_chain
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern


class TestCreate:
    def test_standalone(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), 16 * MiB) as img:
            assert img.size == 16 * MiB
            assert img.cluster_size == 64 * KiB
            assert not img.is_cache
            assert img.backing is None

    def test_custom_cluster_size(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB,
                               cluster_size=512) as img:
            assert img.cluster_size == 512

    def test_inherits_size_from_backing(self, tmp_path, small_base):
        with Qcow2Image.create(str(tmp_path / "c.qcow2"),
                               backing_file=small_base) as img:
            assert img.size == 4 * MiB

    def test_size_required_without_backing(self, tmp_path):
        with pytest.raises(ValueError):
            Qcow2Image.create(str(tmp_path / "a.qcow2"))

    def test_negative_size(self, tmp_path):
        with pytest.raises(ValueError):
            Qcow2Image.create(str(tmp_path / "a.qcow2"), -1)

    def test_fresh_image_reads_zero(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB) as img:
            assert img.read(0, 4096) == b"\0" * 4096
            assert img.read(MiB - 100, 100) == b"\0" * 100

    def test_initial_check_is_clean(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, MiB).close()
        with Qcow2Image.open(p) as img:
            report = img.check()
            assert report.ok, report.errors
            assert report.leaked_clusters == 0


class TestReadWrite:
    @pytest.mark.parametrize("cluster_size", [512, 4096, 64 * KiB])
    def test_roundtrip_various_clusters(self, tmp_path, cluster_size):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 2 * MiB,
                               cluster_size=cluster_size) as img:
            data = pattern(0, 3 * cluster_size + 17)
            img.write(100, data)
            assert img.read(100, len(data)) == data

    def test_unaligned_write_within_cluster(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB) as img:
            img.write(1000, b"abc")
            assert img.read(999, 5) == b"\0abc\0"

    def test_overwrite_in_place(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB) as img:
            img.write(0, b"A" * 1024)
            before = img.physical_size
            img.write(512, b"B" * 256)
            assert img.physical_size == before  # no new allocation
            assert img.read(0, 1024) == b"A" * 512 + b"B" * 256 + b"A" * 256

    def test_write_at_virtual_end(self, tmp_path):
        size = MiB + 300  # not cluster aligned
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), size) as img:
            img.write(size - 10, b"0123456789")
            assert img.read(size - 10, 10) == b"0123456789"
            with pytest.raises(OutOfBoundsError):
                img.write(size - 5, b"0123456789")

    def test_sparse_allocation(self, tmp_path):
        """Only touched clusters are allocated."""
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), 512 * MiB) as img:
            img.write(300 * MiB, b"x")
            assert img.allocated_data_bytes() == 64 * KiB

    def test_read_only_write_rejected(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, MiB).close()
        with Qcow2Image.open(p, read_only=True) as img:
            with pytest.raises(ReadOnlyImageError):
                img.write(0, b"x")


class TestPersistence:
    def test_data_survives_reopen(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        data = pattern(0, 200 * KiB)
        with Qcow2Image.create(p, 4 * MiB) as img:
            img.write(64 * KiB, data)
        with Qcow2Image.open(p) as img:
            assert img.read(64 * KiB, len(data)) == data
            assert img.read(0, 64 * KiB) == b"\0" * 64 * KiB

    def test_many_open_cycles(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, 8 * MiB, cluster_size=4096).close()
        for i in range(5):
            with Qcow2Image.open(p, read_only=False) as img:
                img.write(i * 100 * KiB, pattern(i * 100 * KiB, 5000, seed=i))
        with Qcow2Image.open(p) as img:
            for i in range(5):
                assert img.read(i * 100 * KiB, 5000) == \
                    pattern(i * 100 * KiB, 5000, seed=i)
            assert img.check().ok

    def test_check_after_heavy_io(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 16 * MiB, cluster_size=512) as img:
            for i in range(200):
                img.write((i * 37117) % (16 * MiB - 600), pattern(i, 300))
        with Qcow2Image.open(p) as img:
            report = img.check()
            assert report.ok, report.errors[:5]


class TestBackingChain:
    def test_cow_reads_from_base(self, tmp_path, small_base):
        cow = create_cow_chain(small_base, str(tmp_path / "cow.qcow2"))
        with cow:
            assert cow.read(0, 1000) == pattern(0, 1000)
            assert cow.read(MiB + 5, 1234) == pattern(MiB + 5, 1234)

    def test_writes_stay_local(self, tmp_path, small_base):
        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(1000, b"LOCAL")
            assert cow.read(998, 9) == pattern(998, 2) + b"LOCAL" + \
                pattern(1005, 2)
        # Base is untouched.
        from repro.imagefmt.raw import RawImage

        with RawImage.open(small_base) as base:
            assert base.read(1000, 5) == pattern(1000, 5)

    def test_partial_cluster_cow_fill(self, tmp_path, small_base):
        """Writing part of a cluster pulls the rest from the base."""
        with create_cow_chain(small_base, str(tmp_path / "c.qcow2")) as cow:
            cow.write(70 * KiB, b"Z" * 10)
            # The rest of that 64 KiB cluster must still show base data.
            assert cow.read(64 * KiB, 6 * KiB) == pattern(64 * KiB, 6 * KiB)
            assert cow.read(70 * KiB + 10, 100) == \
                pattern(70 * KiB + 10, 100)

    def test_backing_smaller_than_cow(self, tmp_path, small_base):
        cow_p = str(tmp_path / "c.qcow2")
        with Qcow2Image.create(cow_p, 8 * MiB,
                               backing_file=small_base) as cow:
            assert cow.size == 8 * MiB
            # Beyond the 4 MiB base: zeros.
            assert cow.read(6 * MiB, 100) == b"\0" * 100
            # Straddling the end of the base.
            got = cow.read(4 * MiB - 50, 100)
            assert got == pattern(4 * MiB - 50, 50) + b"\0" * 50

    def test_backing_stats_accumulate(self, tmp_path, small_base):
        with create_cow_chain(small_base, str(tmp_path / "c.qcow2")) as cow:
            cow.read(0, 10 * KiB)
            assert cow.stats.backing_bytes_read == 10 * KiB
            assert cow.backing.stats.bytes_read == 10 * KiB

    def test_three_level_chain(self, tmp_path, small_base):
        mid_p = str(tmp_path / "mid.qcow2")
        top_p = str(tmp_path / "top.qcow2")
        with create_cow_chain(small_base, mid_p) as mid:
            mid.write(2000, b"MIDDLE")
        with Qcow2Image.create(top_p, backing_file=mid_p,
                               backing_format="qcow2") as top:
            assert top.chain_depth() == 3
            assert top.read(2000, 6) == b"MIDDLE"
            assert top.read(0, 100) == pattern(0, 100)
            top.write(2000, b"TOPTOP")
            assert top.read(2000, 6) == b"TOPTOP"
        with Qcow2Image.open(mid_p) as mid:
            assert mid.read(2000, 6) == b"MIDDLE"

    def test_missing_backing_file(self, tmp_path):
        with pytest.raises(BackingChainError):
            Qcow2Image.create(str(tmp_path / "c.qcow2"), MiB,
                              backing_file=str(tmp_path / "nope.raw"))

    def test_relative_backing_path(self, tmp_path):
        make_patterned_base(tmp_path / "rel_base.raw", size=MiB)
        cow_p = str(tmp_path / "c.qcow2")
        Qcow2Image.create(cow_p, backing_file=str(tmp_path / "rel_base.raw"),
                          ).close()
        # Rewrite header with a relative name to test resolution.
        with Qcow2Image.open(cow_p, read_only=False,
                             open_backing=False) as img:
            img.header.backing_file = "rel_base.raw"
            img._rewrite_header()
        with Qcow2Image.open(cow_p) as img:
            assert img.backing is not None
            assert img.read(0, 64) == pattern(0, 64)

    def test_close_closes_chain(self, tmp_path, small_base):
        cow = create_cow_chain(small_base, str(tmp_path / "c.qcow2"))
        base = cow.backing
        cow.close()
        assert base.closed


class TestIntrospection:
    def test_image_info(self, tmp_path, small_base):
        with create_cow_chain(small_base, str(tmp_path / "c.qcow2")) as cow:
            info = cow.image_info()
            assert info["format"] == "qcow2"
            assert info["virtual_size"] == 4 * MiB
            assert info["backing_file"] == small_base
            assert info["is_cache"] is False

    def test_map_clusters(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB,
                               cluster_size=4096) as img:
            img.write(8192, b"x" * 4096)
            runs = list(img.map_clusters())
        covered = sum(length for _, length, _ in runs)
        assert covered == MiB
        allocated = [(o, l) for o, l, a in runs if a]
        assert allocated == [(8192, 4096)]

    def test_is_allocated(self, tmp_path):
        with Qcow2Image.create(str(tmp_path / "a.qcow2"), MiB,
                               cluster_size=4096) as img:
            assert not img.is_allocated(0)
            img.write(0, b"x")
            assert img.is_allocated(0)
            assert img.is_allocated(4095)
            assert not img.is_allocated(4096)

    def test_physical_size_tracks_file(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, MiB) as img:
            img.write(0, b"x" * 128 * KiB)
            img.flush()
            assert img.physical_size == os.path.getsize(p)
