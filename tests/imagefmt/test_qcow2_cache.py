"""Tests for the VMI-cache extension semantics (paper Sections 3 and 4.3).

The three design requirements of Section 3:
1. the cache is a VMI itself (standalone bootable, recurses to base);
2. quota support with fine-grained accounting;
3. immutability with respect to the base image.
"""

import os

import pytest

from repro.errors import QuotaExceededError, ReadOnlyImageError
from repro.imagefmt.chain import (
    create_cache_chain,
    create_cache_image,
    find_cache_layer,
)
from repro.imagefmt.qcow2 import Qcow2Image
from repro.units import KiB, MB, MiB

from tests.conftest import make_patterned_base, pattern


@pytest.fixture
def chain(tmp_path, small_base):
    """base ← cache(512 B clusters, 1 MiB quota) ← CoW, opened rw."""
    cow = create_cache_chain(
        small_base,
        str(tmp_path / "cache.qcow2"),
        str(tmp_path / "cow.qcow2"),
        quota=1 * MiB,
    )
    yield cow
    if not cow.closed:
        cow.close()


class TestCacheCreation:
    def test_cache_flag_via_quota(self, tmp_path, small_base):
        cache = create_cache_image(small_base,
                                   str(tmp_path / "c.qcow2"),
                                   quota=MiB)
        with cache:
            assert cache.is_cache
            assert cache.cache_quota == MiB
            assert cache.cluster_size == 512  # paper's final choice

    def test_cache_requires_backing(self, tmp_path):
        with pytest.raises(ValueError):
            Qcow2Image.create(str(tmp_path / "c.qcow2"), MiB,
                              cache_quota=MiB)

    def test_cache_requires_positive_quota(self, tmp_path, small_base):
        with pytest.raises(ValueError):
            create_cache_image(small_base, str(tmp_path / "c.qcow2"),
                               quota=0)

    def test_initial_current_size_is_header_and_tables(
            self, tmp_path, small_base):
        """§4.3: current size starts as 'size of the header and initial
        tables'."""
        p = str(tmp_path / "c.qcow2")
        create_cache_image(small_base, p, quota=MiB).close()
        header = Qcow2Image.peek_header(p)
        assert header.cache_ext.current_size == os.path.getsize(p)
        assert header.cache_ext.current_size < 64 * KiB

    def test_chain_shape(self, chain):
        cache = chain.backing
        assert not chain.is_cache
        assert cache.is_cache
        assert cache.backing.format_name == "raw"
        assert chain.chain_depth() == 3


class TestCopyOnRead:
    def test_cold_read_populates_cache(self, chain):
        cache = chain.backing
        assert chain.read(0, 4096) == pattern(0, 4096)
        # The cache now holds those clusters: re-reads do not hit base.
        base_before = cache.backing.stats.bytes_read
        assert chain.read(0, 4096) == pattern(0, 4096)
        assert cache.backing.stats.bytes_read == base_before

    def test_cold_read_traffic_is_cluster_granular(self, chain):
        cache = chain.backing
        chain.read(100, 10)  # inside one 512 B cache cluster
        assert cache.backing.stats.bytes_read == 512

    def test_warm_hit_counters(self, chain):
        cache = chain.backing
        chain.read(0, 512)
        assert cache.stats.cache_miss_bytes == 512
        chain.read(0, 512)
        assert cache.stats.cache_hit_bytes == 512

    def test_cache_standalone_boots(self, tmp_path, small_base):
        """Requirement 1 of §3: the cache is a VMI by itself — reads
        through *just* the cache (no CoW on top) must return base data."""
        cache_p = str(tmp_path / "c.qcow2")
        cache = create_cache_image(small_base, cache_p, quota=MiB)
        with cache:
            assert cache.read(10_000, 300) == pattern(10_000, 300)

    def test_persistence_of_warm_content(self, tmp_path, small_base):
        cache_p = str(tmp_path / "c.qcow2")
        with create_cache_image(small_base, cache_p, quota=MiB) as cache:
            cache.read(0, 100 * KiB)
        # Reopen; warm content must be served without base traffic.
        with Qcow2Image.open(cache_p, read_only=False) as cache:
            data = cache.read(0, 100 * KiB)
            assert data == pattern(0, 100 * KiB)
            assert cache.backing.stats.bytes_read == 0

    def test_read_only_open_disables_cor(self, tmp_path, small_base):
        cache_p = str(tmp_path / "c.qcow2")
        create_cache_image(small_base, cache_p, quota=MiB).close()
        with Qcow2Image.open(cache_p, read_only=True) as cache:
            assert not cache.cor_enabled
            assert cache.read(0, 512) == pattern(0, 512)
            # Nothing was cached.
            assert cache.stats.cor_bytes_written == 0


class TestQuota:
    def test_quota_stops_population_not_reads(self, tmp_path, small_base):
        """§4.3 read: on space error 'we stop writing to the cache for
        the future cold reads' — guest reads keep working."""
        cache_p = str(tmp_path / "c.qcow2")
        quota = 64 * KiB
        with create_cache_image(small_base, cache_p,
                                quota=quota) as cache:
            data = cache.read(0, 512 * KiB)  # far more than the quota
            assert data == pattern(0, 512 * KiB)
            assert not cache.cache_runtime.cor.enabled
            assert cache.cache_runtime.cor.space_errors == 1
        assert os.path.getsize(cache_p) <= quota

    def test_file_size_never_exceeds_quota(self, tmp_path, small_base):
        for quota in [32 * KiB, 100 * KiB, 1 * MiB]:
            cache_p = str(tmp_path / f"c{quota}.qcow2")
            with create_cache_image(small_base, cache_p,
                                    quota=quota) as cache:
                cache.read(0, 2 * MiB)
            assert os.path.getsize(cache_p) <= quota

    def test_direct_write_space_error(self, tmp_path, small_base):
        """§4.3 write: explicit writes to a full cache raise the space
        error."""
        cache_p = str(tmp_path / "c.qcow2")
        with create_cache_image(small_base, cache_p,
                                quota=48 * KiB) as cache:
            with pytest.raises(QuotaExceededError):
                cache.write(0, pattern(0, 256 * KiB))

    def test_quota_error_reports_numbers(self, tmp_path, small_base):
        cache_p = str(tmp_path / "c.qcow2")
        with create_cache_image(small_base, cache_p,
                                quota=48 * KiB) as cache:
            with pytest.raises(QuotaExceededError) as ei:
                cache.write(0, pattern(0, 256 * KiB))
            assert ei.value.quota == 48 * KiB
            assert ei.value.used > 0

    def test_current_size_written_back_on_close(self, tmp_path,
                                                small_base):
        cache_p = str(tmp_path / "c.qcow2")
        with create_cache_image(small_base, cache_p,
                                quota=MiB) as cache:
            cache.read(0, 128 * KiB)
        header = Qcow2Image.peek_header(cache_p)
        assert header.cache_ext.current_size == os.path.getsize(cache_p)

    def test_warm_cache_size_close_to_working_set(self, tmp_path,
                                                  small_base):
        """Table 2 vs Table 1: the cache file is the working set plus a
        modest metadata overhead (a few percent at 512 B clusters)."""
        cache_p = str(tmp_path / "c.qcow2")
        ws = 512 * KiB
        with create_cache_image(small_base, cache_p,
                                quota=4 * MiB) as cache:
            cache.read(0, ws)
        size = os.path.getsize(cache_p)
        assert ws < size < ws * 1.10


class TestImmutability:
    def test_guest_writes_do_not_reach_cache(self, chain):
        """Requirement 3 of §3: only base data enters the cache; all VM
        writes go to the CoW image."""
        cache = chain.backing
        chain.write(0, b"GUEST-WRITE" * 100)
        assert cache.stats.bytes_written == 0
        # The cache, read standalone, still shows base content.
        assert cache.read(0, 11) == pattern(0, 11)

    def test_cache_reusable_across_vms(self, tmp_path, small_base):
        """Two successive VMs (CoW overlays) share one warm cache."""
        cache_p = str(tmp_path / "cache.qcow2")
        cow1 = create_cache_chain(small_base, cache_p,
                                  str(tmp_path / "cow1.qcow2"),
                                  quota=2 * MiB)
        with cow1:
            cow1.read(0, 256 * KiB)
            cow1.write(0, b"VM1 was here")
        cow2 = create_cache_chain(small_base, cache_p,
                                  str(tmp_path / "cow2.qcow2"),
                                  quota=2 * MiB)
        with cow2:
            # VM2 must see pristine base data, served from the warm cache.
            base = cow2.backing.backing
            assert cow2.read(0, 256 * KiB) == pattern(0, 256 * KiB)
            assert base.stats.bytes_read == 0

    def test_base_opened_read_only_cache_read_write(self, chain):
        """The §4.3 permission dance: backing base is read-only, backing
        cache is read-write."""
        cache = chain.backing
        base = cache.backing
        assert not cache.read_only
        assert base.read_only
        with pytest.raises(ReadOnlyImageError):
            base.write(0, b"x")


class TestClusterSizeEffects:
    """Figure 9: cache cluster size drives base-image traffic."""

    def _boot_traffic(self, tmp_path, base, cluster_size, tag):
        cow = create_cache_chain(
            base,
            str(tmp_path / f"cache-{tag}.qcow2"),
            str(tmp_path / f"cow-{tag}.qcow2"),
            quota=4 * MiB,
            cache_cluster_size=cluster_size,
        )
        with cow:
            # Scattered small reads, like a boot: 200 reads of 1 KiB.
            for i in range(200):
                offset = (i * 7919 * 1024) % (4 * MiB - 2 * KiB)
                cow.read(offset, KiB)
            base_drv = cow.backing.backing
            return base_drv.stats.bytes_read

    def test_small_clusters_reduce_cold_cache_traffic(
            self, tmp_path, small_base):
        t512 = self._boot_traffic(tmp_path, small_base, 512, "512")
        t64k = self._boot_traffic(tmp_path, small_base, 64 * KiB, "64k")
        # 64 KiB cache clusters amplify traffic well beyond 512 B ones.
        assert t64k > 3 * t512

    def test_512_cluster_traffic_close_to_plain_qcow2(
            self, tmp_path, small_base):
        from repro.imagefmt.chain import create_cow_chain

        t512 = self._boot_traffic(tmp_path, small_base, 512, "x512")
        with create_cow_chain(small_base,
                              str(tmp_path / "plain.qcow2")) as cow:
            for i in range(200):
                offset = (i * 7919 * 1024) % (4 * MiB - 2 * KiB)
                cow.read(offset, KiB)
            plain = cow.backing.stats.bytes_read
        # 512 B granularity rounds each read up to sectors only.
        assert t512 <= plain * 1.05 + 512 * 200


class TestFindCacheLayer:
    def test_found(self, chain):
        layer = find_cache_layer(chain)
        assert layer is chain.backing

    def test_absent(self, tmp_path, small_base):
        from repro.imagefmt.chain import create_cow_chain

        with create_cow_chain(small_base,
                              str(tmp_path / "c.qcow2")) as cow:
            assert find_cache_layer(cow) is None
