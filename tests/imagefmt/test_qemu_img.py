"""Tests for the repro-img CLI facade."""

import json

import pytest

from repro.imagefmt.qemu_img import main
from repro.units import KiB, MiB

from tests.conftest import pattern


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestCreate:
    def test_create_raw(self, tmp_path, capsys):
        p = str(tmp_path / "a.raw")
        code, out, _ = run(capsys, "create", "-f", "raw", p, "4M")
        assert code == 0
        import os

        assert os.path.getsize(p) == 4 * MiB

    def test_create_qcow2(self, tmp_path, capsys):
        p = str(tmp_path / "a.qcow2")
        code, out, _ = run(capsys, "create", p, "16M")
        assert code == 0
        assert "Formatting" in out

    def test_create_cache(self, tmp_path, small_base, capsys):
        p = str(tmp_path / "cache.qcow2")
        code, _, _ = run(capsys, "create", "-b", small_base,
                         "-c", "512", "--cache-quota", "1M", p)
        assert code == 0
        from repro.imagefmt.qcow2 import Qcow2Image

        header = Qcow2Image.peek_header(p)
        assert header.is_cache
        assert header.cache_ext.quota == MiB

    def test_create_raw_with_backing_fails(self, tmp_path, small_base,
                                           capsys):
        code, _, err = run(capsys, "create", "-f", "raw",
                           "-b", small_base,
                           str(tmp_path / "a.raw"), "1M")
        assert code == 1
        assert "raw" in err

    def test_create_raw_without_size_fails(self, tmp_path, capsys):
        code, _, err = run(capsys, "create", "-f", "raw",
                           str(tmp_path / "a.raw"))
        assert code == 1


class TestInfo:
    def test_info_qcow2(self, tmp_path, small_base, capsys):
        p = str(tmp_path / "c.qcow2")
        run(capsys, "create", "-b", small_base, p)
        code, out, _ = run(capsys, "info", p)
        assert code == 0
        assert "file format: qcow2" in out
        assert small_base in out

    def test_info_cache_shows_quota(self, tmp_path, small_base, capsys):
        p = str(tmp_path / "c.qcow2")
        run(capsys, "create", "-b", small_base,
            "--cache-quota", "2M", p)
        code, out, _ = run(capsys, "info", p)
        assert code == 0
        assert "cache quota: 2.1 MB" in out

    def test_info_json(self, tmp_path, small_base, capsys):
        p = str(tmp_path / "c.qcow2")
        run(capsys, "create", "-b", small_base,
            "--cache-quota", "2M", p)
        code, out, _ = run(capsys, "info", "--json", p)
        info = json.loads(out)
        assert info["is_cache"] is True
        assert info["cache_quota"] == 2 * MiB

    def test_info_raw(self, small_base, capsys):
        code, out, _ = run(capsys, "info", small_base)
        assert code == 0
        assert "file format: raw" in out


class TestCheckMapChain:
    def test_check_clean(self, tmp_path, capsys):
        p = str(tmp_path / "a.qcow2")
        run(capsys, "create", p, "4M")
        code, out, _ = run(capsys, "check", p)
        assert code == 0
        assert "No errors" in out

    def test_map(self, tmp_path, capsys):
        p = str(tmp_path / "a.qcow2")
        run(capsys, "create", p, "1M")
        from repro.imagefmt.qcow2 import Qcow2Image

        with Qcow2Image.open(p, read_only=False) as img:
            img.write(0, pattern(0, 64 * KiB))
        code, out, _ = run(capsys, "map", p)
        assert code == 0
        assert "true" in out and "false" in out

    def test_chain_command(self, tmp_path, small_base, capsys):
        cache_p = str(tmp_path / "cache.qcow2")
        cow_p = str(tmp_path / "cow.qcow2")
        run(capsys, "create", "-b", small_base,
            "--cache-quota", "1M", cache_p)
        run(capsys, "create", "-b", cache_p, "-F", "qcow2", cow_p)
        code, out, _ = run(capsys, "chain", cow_p)
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].strip() == cow_p
        assert lines[2].strip() == small_base

    def test_missing_file_error(self, capsys):
        with pytest.raises(FileNotFoundError):
            run(capsys, "info", "/nonexistent/image.qcow2")


class TestDedupCommand:
    def test_dedup_two_caches(self, tmp_path, small_base, capsys):
        from repro.imagefmt.chain import create_cache_chain
        from repro.units import MiB

        for tag in ("a", "b"):
            chain = create_cache_chain(
                small_base, str(tmp_path / f"cache-{tag}.qcow2"),
                str(tmp_path / f"cow-{tag}.qcow2"), quota=4 * MiB)
            with chain:
                chain.read(0, 256 * 1024)  # identical warm content
        code, out, _ = run(capsys, "dedup",
                           str(tmp_path / "cache-a.qcow2"),
                           str(tmp_path / "cache-b.qcow2"))
        assert code == 0
        assert "duplicate:" in out
        assert "50.0% saved" in out

    def test_dedup_single_image(self, tmp_path, small_base, capsys):
        from repro.imagefmt.chain import create_cache_chain
        from repro.units import MiB

        chain = create_cache_chain(
            small_base, str(tmp_path / "cache.qcow2"),
            str(tmp_path / "cow.qcow2"), quota=4 * MiB)
        with chain:
            chain.read(0, 128 * 1024)
        code, out, _ = run(capsys, "dedup", "--chunk-size", "8K",
                           str(tmp_path / "cache.qcow2"))
        assert code == 0
        assert "chunk size: 8192" in out


class TestCommitRebaseCommands:
    def test_commit_cli(self, tmp_path, small_base, capsys):
        from repro.imagefmt.chain import create_cow_chain
        from repro.imagefmt.raw import RawImage

        cow_p = str(tmp_path / "cow.qcow2")
        with create_cow_chain(small_base, cow_p) as cow:
            cow.write(0, b"VIA-CLI")
        code, out, _ = run(capsys, "commit", cow_p)
        assert code == 0
        assert "Committed" in out
        assert "stale" in out  # the cache-invalidation warning
        with RawImage.open(small_base) as base:
            assert base.read(0, 7) == b"VIA-CLI"

    def test_rebase_unsafe_cli(self, tmp_path, small_base, capsys):
        import shutil

        from repro.imagefmt.chain import create_cow_chain
        from repro.imagefmt.qcow2 import Qcow2Image

        cow_p = str(tmp_path / "cow.qcow2")
        create_cow_chain(small_base, cow_p).close()
        moved = str(tmp_path / "moved.raw")
        shutil.copy(small_base, moved)
        code, out, _ = run(capsys, "rebase", "-u", "-b", moved, cow_p)
        assert code == 0
        assert Qcow2Image.peek_header(cow_p).backing_file == moved

    def test_rebase_flatten_cli(self, tmp_path, small_base, capsys):
        from repro.imagefmt.chain import create_cow_chain
        from repro.imagefmt.qcow2 import Qcow2Image

        cow_p = str(tmp_path / "cow.qcow2")
        create_cow_chain(small_base, cow_p).close()
        code, out, _ = run(capsys, "rebase", cow_p)
        assert code == 0
        assert "standalone" in out
        assert Qcow2Image.peek_header(cow_p).backing_file is None


class TestBootBenchCommand:
    def test_boot_bench_on_cache_chain(self, tmp_path, small_base,
                                       capsys):
        from repro.bootmodel.generator import generate_boot_trace
        from repro.bootmodel.profiles import tiny_profile
        from repro.imagefmt.chain import create_cache_chain
        from repro.units import MiB

        profile = tiny_profile(vmi_size=4 * MiB, working_set=512 * 1024,
                               boot_time=1.0)
        trace = generate_boot_trace(profile, seed=1)
        trace_p = str(tmp_path / "trace.json")
        trace.save(trace_p)
        create_cache_chain(small_base, str(tmp_path / "cache.qcow2"),
                           str(tmp_path / "cow.qcow2"),
                           quota=2 * MiB).close()
        code, out, _ = run(capsys, "boot-bench", "--trace", trace_p,
                           str(tmp_path / "cow.qcow2"))
        assert code == 0
        assert "base fetched:" in out
        assert "cache size:" in out

    def test_boot_bench_missing_trace(self, tmp_path, small_base,
                                      capsys):
        from repro.imagefmt.chain import create_cow_chain

        create_cow_chain(small_base,
                         str(tmp_path / "cow.qcow2")).close()
        with pytest.raises(FileNotFoundError):
            run(capsys, "boot-bench", "--trace",
                str(tmp_path / "none.json"),
                str(tmp_path / "cow.qcow2"))
