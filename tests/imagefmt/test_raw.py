"""Tests for the raw driver and the block-driver base behaviour."""

import pytest

from repro.errors import (
    ImageClosedError,
    OutOfBoundsError,
    ReadOnlyImageError,
)
from repro.imagefmt.driver import RangeSet, open_image, probe_format
from repro.imagefmt.raw import RawImage
from repro.units import MiB

from tests.conftest import pattern


class TestRawBasics:
    def test_create_and_size(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), 4 * MiB) as img:
            assert img.size == 4 * MiB
            assert not img.read_only

    def test_sparse_reads_zero(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), MiB) as img:
            assert img.read(0, 4096) == b"\0" * 4096
            assert img.read(MiB - 10, 10) == b"\0" * 10

    def test_write_read_roundtrip(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), MiB) as img:
            data = pattern(1000, 5000)
            img.write(1000, data)
            assert img.read(1000, 5000) == data
            # Unwritten neighbours stay zero.
            assert img.read(0, 1000) == b"\0" * 1000

    def test_reopen_read_only(self, tmp_path):
        p = str(tmp_path / "a.raw")
        with RawImage.create(p, MiB) as img:
            img.write(0, b"abc")
        with RawImage.open(p) as img:
            assert img.read_only
            assert img.read(0, 3) == b"abc"
            with pytest.raises(ReadOnlyImageError):
                img.write(0, b"x")

    def test_zero_length_ops(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), MiB) as img:
            assert img.read(0, 0) == b""
            img.write(0, b"")  # no-op, no error
            assert img.stats.read_ops == 0
            assert img.stats.write_ops == 0


class TestBoundsAndState:
    def test_read_past_end(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), 1000) as img:
            with pytest.raises(OutOfBoundsError):
                img.read(990, 20)

    def test_write_past_end(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), 1000) as img:
            with pytest.raises(OutOfBoundsError):
                img.write(999, b"ab")

    def test_negative_offset(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), 1000) as img:
            with pytest.raises(OutOfBoundsError):
                img.read(-1, 10)

    def test_use_after_close(self, tmp_path):
        img = RawImage.create(str(tmp_path / "a.raw"), 1000)
        img.close()
        with pytest.raises(ImageClosedError):
            img.read(0, 1)
        with pytest.raises(ImageClosedError):
            img.write(0, b"x")
        with pytest.raises(ImageClosedError):
            img.flush()

    def test_double_close_is_idempotent(self, tmp_path):
        img = RawImage.create(str(tmp_path / "a.raw"), 1000)
        img.close()
        img.close()


class TestStats:
    def test_counters(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), MiB) as img:
            img.write(0, b"x" * 100)
            img.read(0, 50)
            img.read(50, 50)
            assert img.stats.write_ops == 1
            assert img.stats.bytes_written == 100
            assert img.stats.read_ops == 2
            assert img.stats.bytes_read == 100

    def test_range_tracking(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), MiB) as img:
            img.enable_range_tracking()
            img.read(0, 100)
            img.read(50, 100)  # overlaps
            img.read(1000, 10)
            assert img.stats.touched.total() == 150 + 10

    def test_range_tracking_off_by_default(self, tmp_path):
        with RawImage.create(str(tmp_path / "a.raw"), MiB) as img:
            img.read(0, 100)
            assert img.stats.touched.total() == 0


class TestProbeAndOpen:
    def test_probe_raw(self, tmp_path, small_base):
        assert probe_format(small_base) == "raw"

    def test_open_image_raw(self, small_base):
        with open_image(small_base) as img:
            assert img.format_name == "raw"
            assert img.read(0, 16) == pattern(0, 16)

    def test_backing_of_raw_is_none(self, small_base):
        with open_image(small_base) as img:
            assert img.backing is None
            assert img.chain_depth() == 1


class TestRangeSet:
    def test_empty(self):
        rs = RangeSet()
        assert rs.total() == 0
        assert len(rs) == 0
        assert not rs.contains(0)

    def test_disjoint(self):
        rs = RangeSet()
        rs.add(10, 5)
        rs.add(100, 5)
        assert rs.total() == 10
        assert rs.intervals() == [(10, 15), (100, 105)]

    def test_merge_overlap(self):
        rs = RangeSet()
        rs.add(10, 10)
        rs.add(15, 10)
        assert rs.intervals() == [(10, 25)]

    def test_merge_adjacent(self):
        rs = RangeSet()
        rs.add(10, 10)
        rs.add(20, 10)
        assert rs.intervals() == [(10, 30)]

    def test_merge_bridging(self):
        rs = RangeSet()
        rs.add(0, 10)
        rs.add(20, 10)
        rs.add(5, 20)  # bridges both
        assert rs.intervals() == [(0, 30)]

    def test_subsumed(self):
        rs = RangeSet()
        rs.add(0, 100)
        rs.add(10, 5)
        assert rs.intervals() == [(0, 100)]

    def test_zero_length_ignored(self):
        rs = RangeSet()
        rs.add(10, 0)
        assert rs.total() == 0

    def test_contains(self):
        rs = RangeSet()
        rs.add(10, 10)
        assert rs.contains(10)
        assert rs.contains(19)
        assert not rs.contains(20)
        assert not rs.contains(9)

    def test_many_unordered_adds(self):
        rs = RangeSet()
        import random

        rng = random.Random(42)
        spans = [(rng.randrange(0, 10000), rng.randrange(1, 50))
                 for _ in range(500)]
        covered = set()
        for start, ln in spans:
            rs.add(start, ln)
            covered.update(range(start, start + ln))
        assert rs.total() == len(covered)
        ivs = rs.intervals()
        for (s1, e1), (s2, e2) in zip(ivs, ivs[1:]):
            assert e1 < s2  # sorted and disjoint (not even adjacent)


class TestRangeSetGaps:
    def test_gaps_of_empty_set(self):
        rs = RangeSet()
        assert rs.gaps(10, 20) == [(10, 20)]

    def test_no_gaps_when_covered(self):
        rs = RangeSet()
        rs.add(0, 100)
        assert rs.gaps(10, 20) == []

    def test_partial_overlap(self):
        rs = RangeSet()
        rs.add(20, 10)   # [20, 30)
        assert rs.gaps(10, 30) == [(10, 10), (30, 10)]

    def test_multiple_islands(self):
        rs = RangeSet()
        rs.add(10, 5)
        rs.add(25, 5)
        assert rs.gaps(0, 40) == [(0, 10), (15, 10), (30, 10)]

    def test_zero_length(self):
        rs = RangeSet()
        assert rs.gaps(5, 0) == []

    def test_covered_in(self):
        rs = RangeSet()
        rs.add(10, 10)
        assert rs.covered_in(0, 40) == 10
        assert rs.covered_in(15, 100) == 5
        assert rs.covered_in(30, 5) == 0

    def test_add_returns_new_bytes(self):
        rs = RangeSet()
        assert rs.add(0, 10) == 10
        assert rs.add(5, 10) == 5
        assert rs.add(0, 15) == 0
        assert rs.add(100, 1) == 1

    def test_gaps_and_add_agree(self):
        import random

        rng = random.Random(7)
        rs = RangeSet()
        for _ in range(300):
            s = rng.randrange(0, 5000)
            ln = rng.randrange(1, 100)
            expected_new = sum(l for _, l in rs.gaps(s, ln))
            assert rs.add(s, ln) == expected_new
