"""Sync modes, the dirty-bit lifecycle, and atomic image creation.

The crash-consistency knobs (DESIGN.md §9): ``sync="barrier"`` is the
default and issues ordered fsyncs; ``sync="none"`` restores the
paper-prototype behaviour for benchmarks; the dirty bit brackets every
interval of unflushed mutation; ``create`` builds in a temp file and
renames, so a failed create never leaves (or destroys) anything.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.errors import BackingChainError, CorruptImageError
from repro.imagefmt import constants as C
from repro.imagefmt.qcow2 import Qcow2Image, _resolve_sync_mode
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern


class TestSyncModes:
    def test_default_is_barrier(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            assert img.sync_mode == C.SYNC_BARRIER
            assert img.image_info()["sync_mode"] == "barrier"

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_IMG_SYNC", "none")
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            assert img.sync_mode == C.SYNC_NONE

    def test_explicit_arg_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_IMG_SYNC", "none")
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB, sync="barrier") as img:
            assert img.sync_mode == C.SYNC_BARRIER

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sync mode"):
            _resolve_sync_mode("sometimes")

    def test_barrier_counts_fsyncs_none_does_not(self, tmp_path):
        for mode, expect_fsyncs in (("barrier", True), ("none", False)):
            p = str(tmp_path / f"img-{mode}.qcow2")
            with Qcow2Image.create(p, 1 * MiB, sync=mode) as img:
                img.write(0, pattern(0, 64 * KiB))
                img.flush()
                if expect_fsyncs:
                    assert img.stats.fsync_ops > 0
                else:
                    assert img.stats.fsync_ops == 0

    def test_none_mode_still_writes_correct_data(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB, sync="none") as img:
            img.write(0, pattern(0, 64 * KiB))
        with Qcow2Image.open(p) as img:
            assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
            assert not img.header.is_dirty


class TestDirtyBit:
    def test_set_during_mutation_cleared_by_flush(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            assert not Qcow2Image.peek_header(p).is_dirty
            img.write(0, pattern(0, 4 * KiB))
            # Durably dirty while mutations are unflushed...
            assert Qcow2Image.peek_header(p).is_dirty
            assert img.image_info()["dirty"]
            img.flush()
            # ...and durably clean right after the flush completes.
            assert not Qcow2Image.peek_header(p).is_dirty
        assert not Qcow2Image.peek_header(p).is_dirty

    def test_one_header_write_per_interval(self, tmp_path):
        """The bit is written once per dirty interval, not per write."""
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            img.write(0, pattern(0, 4 * KiB))
            fsyncs = img.stats.fsync_ops
            img.write(8 * KiB, pattern(8 * KiB, 4 * KiB))
            img.write(64 * KiB, pattern(64 * KiB, 4 * KiB))
            assert img.stats.fsync_ops == fsyncs  # no new barriers

    def test_clean_close_after_reads_only(self, tmp_path):
        base = make_patterned_base(tmp_path / "b.raw", size=64 * KiB)
        p = str(tmp_path / "c.qcow2")
        Qcow2Image.create(p, backing_file=base, cluster_size=512,
                          cache_quota=MiB).close()
        # CoR populates (mutates) the cache: dirty mid-session.
        with Qcow2Image.open(p, read_only=False) as img:
            img.read(0, 8 * KiB)
            assert Qcow2Image.peek_header(p).is_dirty
        assert not Qcow2Image.peek_header(p).is_dirty

    def test_read_only_open_never_dirties(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            img.write(0, pattern(0, 4 * KiB))
        before = open(p, "rb").read()
        with Qcow2Image.open(p, read_only=True) as img:
            img.read(0, 4 * KiB)
        assert open(p, "rb").read() == before

    def test_unknown_feature_bit_refused(self, tmp_path):
        from repro.errors import UnsupportedFeatureError

        p = str(tmp_path / "a.qcow2")
        Qcow2Image.create(p, 1 * MiB).close()
        header = Qcow2Image.peek_header(p)
        header.incompatible_features |= 1 << 13
        with open(p, "r+b") as f:
            f.write(header.encode())
        with pytest.raises(UnsupportedFeatureError,
                           match="incompatible feature"):
            Qcow2Image.open(p)


class TestFlushBranches:
    def test_orphan_dirty_l2_raises_corrupt_not_assert(self, tmp_path):
        """A dirty L2 table whose L1 pointer vanished is an ImageError
        (reachable via bugs or concurrent tampering), not an assert."""
        p = str(tmp_path / "a.qcow2")
        img = Qcow2Image.create(p, 1 * MiB)
        try:
            img.write(0, pattern(0, 4 * KiB))
            assert img._l2_dirty
            img._l1[0] = 0  # simulate the lost pointer
            with pytest.raises(CorruptImageError,
                               match="without an L1 pointer"):
                img.flush()
        finally:
            img._l2_dirty.clear()
            img.close()

    def test_normal_flush_path(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            img.write(0, pattern(0, 4 * KiB))
            img.flush()  # the healthy branch of the same code path
        with Qcow2Image.open(p) as img:
            assert img.read(0, 4 * KiB) == pattern(0, 4 * KiB)
            assert img.check().ok

    def test_flush_on_clean_image_is_noop(self, tmp_path):
        p = str(tmp_path / "a.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            img.write(0, pattern(0, 4 * KiB))
            img.flush()
            fsyncs = img.stats.fsync_ops
            img.flush()
            img.flush()
            assert img.stats.fsync_ops == fsyncs


class TestAtomicCreate:
    def test_failed_create_leaves_nothing(self, tmp_path):
        """A create whose backing open fails must not leave any file."""
        p = str(tmp_path / "new.qcow2")
        with pytest.raises(BackingChainError):
            Qcow2Image.create(
                p, backing_file=str(tmp_path / "missing.raw"))
        assert not os.path.exists(p)
        assert glob.glob(str(tmp_path / "*.creating-*")) == []

    def test_failed_create_preserves_existing_image(self, tmp_path):
        """Re-creating over a live image must not destroy it on error."""
        p = str(tmp_path / "img.qcow2")
        with Qcow2Image.create(p, 1 * MiB) as img:
            img.write(0, pattern(0, 8 * KiB))
        with pytest.raises(BackingChainError):
            Qcow2Image.create(
                p, backing_file=str(tmp_path / "missing.raw"))
        # The original is intact, not truncated or half-overwritten.
        with Qcow2Image.open(p) as img:
            assert img.read(0, 8 * KiB) == pattern(0, 8 * KiB)
            assert img.check().ok

    def test_invalid_argument_leaves_nothing(self, tmp_path):
        p = str(tmp_path / "new.qcow2")
        with pytest.raises(ValueError):
            Qcow2Image.create(p, size=-1)
        assert not os.path.exists(p)
        assert glob.glob(str(tmp_path / "*.creating-*")) == []

    def test_successful_create_leaves_no_temp(self, tmp_path):
        p = str(tmp_path / "img.qcow2")
        Qcow2Image.create(p, 1 * MiB).close()
        assert os.path.exists(p)
        assert glob.glob(str(tmp_path / "*.creating-*")) == []
