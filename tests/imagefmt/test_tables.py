"""Tests for the L1/L2 address arithmetic (paper Section 4.1)."""

import pytest

from repro.imagefmt.tables import (
    AddressSplit,
    cluster_size_to_bits,
    iter_cluster_chunks,
    l2_tables_needed,
)
from repro.units import GiB, KiB, MiB


class TestAddressSplitPaperExample:
    """The worked example from Section 4.1 (64 KiB clusters)."""

    def setup_method(self):
        self.split = AddressSplit(cluster_bits=16)

    def test_cluster_size(self):
        assert self.split.cluster_size == 64 * KiB

    def test_l2_bits_is_cluster_bits_minus_address_size(self):
        # m = cluster_bits - 3 (8-byte entries)
        assert self.split.l2_bits == 13

    def test_l1_bits_is_the_remainder(self):
        # n = 64 - (d + m)
        assert self.split.l1_bits == 64 - 16 - 13

    def test_l2_entries(self):
        assert self.split.l2_entries == 8192

    def test_bytes_per_l2(self):
        assert self.split.bytes_covered_per_l2() == 8192 * 64 * KiB


class TestAddressSplit512:
    """The paper's cache cluster size: 512 bytes (Section 5.1)."""

    def setup_method(self):
        self.split = AddressSplit(cluster_bits=9)

    def test_l2_entries(self):
        assert self.split.l2_entries == 64

    def test_l2_metadata_for_200mb_cache(self):
        # §5.1: "For a cache quota of 200 MB, only 3.1 MB is necessary
        # for L2-tables."  Check our geometry reproduces that figure.
        quota = 200_000_000
        clusters = quota // 512
        l2_tables = -(-clusters // self.split.l2_entries)
        l2_bytes = l2_tables * 512
        assert 2_900_000 < l2_bytes < 3_300_000

    def test_roundtrip_indexing(self):
        for vba in [0, 511, 512, 12345678, 2**40 + 7]:
            l1 = self.split.l1_index(vba)
            l2 = self.split.l2_index(vba)
            off = self.split.in_cluster(vba)
            reconstructed = (
                ((l1 << self.split.l2_bits) + l2) << self.split.cluster_bits
            ) + off
            assert reconstructed == vba


class TestAddressSplitValidation:
    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            AddressSplit(cluster_bits=8)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            AddressSplit(cluster_bits=22)

    def test_required_l1_entries(self):
        split = AddressSplit(cluster_bits=16)
        assert split.required_l1_entries(0) == 0
        assert split.required_l1_entries(1) == 1
        per_l2 = split.bytes_covered_per_l2()
        assert split.required_l1_entries(per_l2) == 1
        assert split.required_l1_entries(per_l2 + 1) == 2
        assert split.required_l1_entries(10 * GiB) == \
            -(-10 * GiB // per_l2)

    def test_required_l1_entries_negative(self):
        with pytest.raises(ValueError):
            AddressSplit(cluster_bits=16).required_l1_entries(-1)


class TestClusterSizeToBits:
    def test_valid_sizes(self):
        assert cluster_size_to_bits(512) == 9
        assert cluster_size_to_bits(64 * KiB) == 16
        assert cluster_size_to_bits(2 * MiB) == 21

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            cluster_size_to_bits(1000)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            cluster_size_to_bits(256)
        with pytest.raises(ValueError):
            cluster_size_to_bits(4 * MiB)


class TestIterClusterChunks:
    def test_single_cluster_aligned(self):
        chunks = list(iter_cluster_chunks(0, 512, 512))
        assert chunks == [(0, 0, 512)]

    def test_crosses_boundary(self):
        chunks = list(iter_cluster_chunks(500, 24, 512))
        assert chunks == [(0, 500, 12), (1, 0, 12)]

    def test_spans_many(self):
        chunks = list(iter_cluster_chunks(100, 2000, 512))
        total = sum(c for _, _, c in chunks)
        assert total == 2000
        assert chunks[0] == (0, 100, 412)
        assert chunks[-1][0] == (100 + 2000 - 1) // 512

    def test_zero_length(self):
        assert list(iter_cluster_chunks(100, 0, 512)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(iter_cluster_chunks(-1, 10, 512))
        with pytest.raises(ValueError):
            list(iter_cluster_chunks(0, -10, 512))

    def test_chunks_are_contiguous(self):
        pos = 777
        for idx, inc, ln in iter_cluster_chunks(777, 99999, 4096):
            assert idx * 4096 + inc == pos
            pos += ln
        assert pos == 777 + 99999


class TestL2TablesNeeded:
    def test_within_one_table(self):
        split = AddressSplit(cluster_bits=16)
        assert list(l2_tables_needed(split, 0, 1000)) == [0]

    def test_spanning(self):
        split = AddressSplit(cluster_bits=9)
        per = split.bytes_covered_per_l2()  # 64 * 512 = 32 KiB
        r = l2_tables_needed(split, per - 10, 20)
        assert list(r) == [0, 1]

    def test_empty(self):
        split = AddressSplit(cluster_bits=16)
        assert len(l2_tables_needed(split, 0, 0)) == 0
