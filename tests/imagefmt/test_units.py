"""Tests for repro.units."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MB,
    MiB,
    SECTOR_SIZE,
    align_down,
    align_up,
    div_round_up,
    format_size,
    format_time,
    is_power_of_two,
    parse_size,
)


class TestParseSize:
    def test_plain_integer_string(self):
        assert parse_size("512") == 512

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_binary_suffixes(self):
        assert parse_size("64K") == 64 * KiB
        assert parse_size("16M") == 16 * MiB
        assert parse_size("2G") == 2 * GiB

    def test_explicit_iec(self):
        assert parse_size("64KiB") == 64 * KiB
        assert parse_size("1MiB") == MiB

    def test_decimal_mode(self):
        assert parse_size("85.2M", decimal=True) == 85_200_000
        assert parse_size("200M", decimal=True) == 200 * MB

    def test_decimal_mode_iec_stays_binary(self):
        assert parse_size("1MiB", decimal=True) == MiB

    def test_lowercase(self):
        assert parse_size("64k") == 64 * KiB

    def test_trailing_b(self):
        assert parse_size("512B") == 512
        assert parse_size("64KB") == 64 * KiB  # qemu convention: binary

    def test_fractional_binary_rejected_when_not_whole(self):
        with pytest.raises(ValueError):
            parse_size("0.3")

    def test_garbage_rejected(self):
        for bad in ["", "abc", "12Q", "--5", "1.2.3M"]:
            with pytest.raises(ValueError):
                parse_size(bad)

    def test_fractional_k_whole(self):
        assert parse_size("1.5K") == 1536


class TestFormatters:
    def test_format_size_decimal(self):
        assert format_size(85_200_000) == "85.2 MB"
        assert format_size(512) == "512 B"
        assert format_size(0) == "0 B"

    def test_format_size_binary(self):
        assert format_size(64 * KiB, decimal=False) == "64.0 KiB"

    def test_format_size_negative(self):
        assert format_size(-1000) == "-1.0 KB"

    def test_format_time_ranges(self):
        assert format_time(5e-7) == "0.5 us"
        assert format_time(0.0083) == "8.3 ms"
        assert format_time(35.2) == "35.2 s"
        assert format_time(895) == "14:55.0 min"

    def test_format_time_negative(self):
        assert format_time(-2.0) == "-2.0 s"


class TestAlignment:
    def test_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(512)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_align_down(self):
        assert align_down(1000, 512) == 512
        assert align_down(512, 512) == 512
        assert align_down(0, 512) == 0

    def test_align_up(self):
        assert align_up(1000, 512) == 1024
        assert align_up(512, 512) == 512
        assert align_up(0, 512) == 0

    def test_div_round_up(self):
        assert div_round_up(0, 512) == 0
        assert div_round_up(1, 512) == 1
        assert div_round_up(512, 512) == 1
        assert div_round_up(513, 512) == 2

    def test_sector_size(self):
        assert SECTOR_SIZE == 512
