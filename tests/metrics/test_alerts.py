"""SLO rule grammar + alert state machine lifecycle."""

import json

import pytest

from repro.metrics.alerts import (
    AlertEngine,
    BurnRateRule,
    JsonlNotifier,
    RuleError,
    ThresholdRule,
)
from repro.metrics.registry import MetricsRegistry, set_registry


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


class FakeSnapshot:
    """Duck-types the rule-engine surface of FleetSnapshot."""

    def __init__(self, poll, signals=None, node_values=None,
                 deltas=None):
        self.poll = poll
        self.time = float(poll)
        self.signals = signals or {}
        self._node_values = node_values or {}
        self._deltas = deltas or {}

    def node_signals(self, name):
        return {node: values.get(name)
                for node, values in self._node_values.items()}

    def fleet_delta(self, families, n):
        if isinstance(families, str):
            families = (families,)
        for family in families:
            if family in self._deltas:
                return self._deltas[family]
        return None


class TestGrammar:
    def test_basic(self):
        rule = ThresholdRule.parse("cache_hit_ratio < 0.5")
        assert rule.signal == "cache_hit_ratio"
        assert rule.op == "<"
        assert rule.threshold == 0.5
        assert rule.for_polls == 1
        assert rule.resolve_polls == 1
        assert rule.scope == "fleet"

    def test_full_form_with_percent(self):
        rule = ThresholdRule.parse(
            "storage_offload_fraction < 80% for 5 resolve 3")
        assert rule.threshold == pytest.approx(0.8)
        assert rule.for_polls == 5
        assert rule.resolve_polls == 3

    def test_node_scope(self):
        rule = ThresholdRule.parse("node:up < 1 for 3")
        assert rule.scope == "node"
        assert rule.signal == "up"

    @pytest.mark.parametrize("text", [
        "", "just_a_signal", "x <", "x ~ 5", "x < 5 for zero",
    ])
    def test_rejects_garbage(self, text):
        with pytest.raises(RuleError):
            ThresholdRule.parse(text)

    def test_rejects_bad_fields(self):
        with pytest.raises(RuleError, match="unknown operator"):
            ThresholdRule(name="r", signal="s", op="~", threshold=1)
        with pytest.raises(RuleError, match="scope"):
            ThresholdRule(name="r", signal="s", op="<", threshold=1,
                          scope="rack")
        with pytest.raises(RuleError, match=">= 1"):
            ThresholdRule(name="r", signal="s", op="<", threshold=1,
                          for_polls=0)

    def test_burn_rate_validation(self):
        with pytest.raises(RuleError, match="objective"):
            BurnRateRule(name="b", good="g", total="t", objective=1.0)
        with pytest.raises(RuleError, match="window_polls"):
            BurnRateRule(name="b", good="g", total="t", objective=0.9,
                         window_polls=1)
        with pytest.raises(RuleError, match="fleet-scoped"):
            BurnRateRule(name="b", good="g", total="t", objective=0.9,
                         scope="node")


class TestLifecycle:
    def run_polls(self, engine, values, signal="s"):
        """Feed a value sequence; return [(poll, state), ...] events."""
        out = []
        for poll, value in enumerate(values, start=1):
            snap = FakeSnapshot(poll, signals={signal: value})
            out += [(e.poll, e.state) for e in engine.evaluate(snap)]
        return out

    def test_idle_offload_rule_stays_quiet(self, registry):
        # Regression companion to the storage_offload_fraction fix:
        # an idle fleet publishes the signal as None (no data), and a
        # low-offload rule must freeze — never treat the gap as 0 and
        # fire on a fleet that simply has no traffic yet.
        engine = AlertEngine(["storage_offload_fraction < 80% for 2"])
        events = self.run_polls(
            engine, [None, None, None, 0.2, 0.2],
            signal="storage_offload_fraction")
        assert events == [(4, "pending"), (5, "firing")]

    def test_pending_firing_resolved(self, registry):
        engine = AlertEngine(["s > 10 for 3 resolve 2"])
        events = self.run_polls(
            engine, [5, 11, 11, 11, 11, 5, 5, 5])
        assert events == [(2, "pending"), (4, "firing"),
                          (7, "resolved")]
        assert engine.active() == []

    def test_for_one_fires_same_poll_as_pending(self, registry):
        engine = AlertEngine(["s > 10"])
        events = self.run_polls(engine, [11])
        assert events == [(1, "pending"), (1, "firing")]
        assert len(engine.firing()) == 1

    def test_pending_clears_silently(self, registry):
        engine = AlertEngine(["s > 10 for 3"])
        events = self.run_polls(engine, [11, 11, 5, 5])
        # Never fired, so no resolved event — just the pending.
        assert events == [(1, "pending")]
        assert engine.active() == []

    def test_none_freezes_state(self, registry):
        engine = AlertEngine(["s > 10 for 2 resolve 2"])
        events = self.run_polls(engine, [11, None, 11])
        # The None poll neither breaches nor clears; streak resumes.
        assert events == [(1, "pending"), (3, "firing")]

    def test_node_scope_tracks_instances(self, registry):
        engine = AlertEngine(["node:up < 1 for 2 resolve 1"])
        nodes = {"a": {"up": 0.0}, "b": {"up": 1.0}}
        snaps = [FakeSnapshot(p, node_values=nodes) for p in (1, 2)]
        assert [(e.instance, e.state)
                for e in engine.evaluate(snaps[0])] == [("a", "pending")]
        assert [(e.instance, e.state)
                for e in engine.evaluate(snaps[1])] == [("a", "firing")]

    def test_departed_node_state_pruned(self, registry):
        engine = AlertEngine(["node:up < 1"])
        down = FakeSnapshot(1, node_values={"a": {"up": 0.0}})
        events = engine.evaluate(down)
        assert [e.state for e in events] == ["pending", "firing"]
        # Node leaves the fleet entirely: state dropped, no zombie
        # firing alert.
        gone = FakeSnapshot(2, node_values={})
        assert engine.evaluate(gone) == []
        assert engine.active() == []

    def test_burn_rate_lifecycle(self, registry):
        # objective 0.8 => budget 0.2.  good/total = 0.5 => error 0.5
        # => burn 2.5 > factor 1.
        rule = BurnRateRule(name="hit-slo", good="hits", total="reads",
                            objective=0.8, window_polls=3)
        engine = AlertEngine([rule])
        hot = FakeSnapshot(1, deltas={"hits": 50.0, "reads": 100.0})
        events = engine.evaluate(hot)
        assert [e.state for e in events] == ["pending", "firing"]
        assert events[0].value == pytest.approx(2.5)
        ok = FakeSnapshot(2, deltas={"hits": 95.0, "reads": 100.0})
        assert [e.state for e in engine.evaluate(ok)] == ["resolved"]

    def test_burn_rate_insufficient_data(self, registry):
        rule = BurnRateRule(name="b", good="hits", total="reads",
                            objective=0.8)
        engine = AlertEngine([rule])
        assert engine.evaluate(FakeSnapshot(1, deltas={})) == []
        assert engine.evaluate(
            FakeSnapshot(2, deltas={"hits": 1.0, "reads": 0.0})) == []


class TestEngine:
    def test_duplicate_rule_name_rejected(self, registry):
        engine = AlertEngine(["s > 1"])
        with pytest.raises(RuleError, match="duplicate"):
            engine.add_rule("s > 1")

    def test_non_callable_sink_rejected(self, registry):
        with pytest.raises(TypeError):
            AlertEngine([], sinks=["not-a-callable"])

    def test_transition_counters_and_gauge(self, registry):
        engine = AlertEngine(["s > 10 resolve 1"])
        engine.evaluate(FakeSnapshot(1, signals={"s": 11.0}))
        name = "s > 10 resolve 1"
        assert registry.counter("fleet_alert_transitions_total",
                                rule=name, state="pending").value == 1
        assert registry.counter("fleet_alert_transitions_total",
                                rule=name, state="firing").value == 1
        assert registry.gauge("fleet_alerts_firing").value == 1
        engine.evaluate(FakeSnapshot(2, signals={"s": 0.0}))
        assert registry.gauge("fleet_alerts_firing").value == 0

    def test_jsonl_sink(self, registry, tmp_path):
        path = tmp_path / "alerts.jsonl"
        engine = AlertEngine(["s > 10"], sinks=[JsonlNotifier(str(path))])
        engine.evaluate(FakeSnapshot(1, signals={"s": 99.0}))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [e["state"] for e in lines] == ["pending", "firing"]
        assert lines[0]["value"] == 99.0
        assert lines[0]["instance"] == "fleet"

    def test_broken_sink_is_counted_not_fatal(self, registry):
        def boom(event):
            raise RuntimeError("sink down")

        collected = []
        engine = AlertEngine(["s > 10"], sinks=[boom, collected.append])
        engine.evaluate(FakeSnapshot(1, signals={"s": 11.0}))
        # Both transitions still reached the healthy sink.
        assert [e.state for e in collected] == ["pending", "firing"]
        assert registry.counter(
            "fleet_alert_sink_errors_total").value == 2
