"""Tests for the ASCII figure renderer."""

import pytest

from repro.metrics.ascii_plot import plot_log, plot_series
from repro.metrics.collectors import ExperimentLog, Series


def fig2_like():
    gbe = Series("QCOW2 - 1GbE")
    ib = Series("QCOW2 - 32GbIB")
    for x, (y1, y2) in zip([1, 4, 8, 16, 32, 64],
                           [(45, 43), (46, 42), (47, 43),
                            (53, 41), (65, 42), (87, 43)]):
        gbe.add(x, y1)
        ib.add(x, y2)
    return [gbe, ib]


class TestPlotSeries:
    def test_contains_markers_and_legend(self):
        out = plot_series(fig2_like(), x_label="# nodes")
        assert "x" in out and "o" in out
        assert "legend: x QCOW2 - 1GbE   o QCOW2 - 32GbIB" in out
        assert "(# nodes)" in out

    def test_axis_labels_show_extremes(self):
        out = plot_series(fig2_like())
        assert "87.0" in out   # y max
        assert "0.0" in out    # y min (clamped at zero)
        assert "64" in out     # last x tick

    def test_rising_series_rises(self):
        """The 1GbE marker must appear higher (earlier row) at x=64
        than at x=1."""
        out = plot_series([fig2_like()[0]])
        rows = out.splitlines()
        first_col = min(i for i, row in enumerate(rows) if "x" in row)
        # The top of the plot belongs to the big values at the right.
        top_row = rows[first_col]
        assert top_row.rstrip().endswith("x")

    def test_dimensions(self):
        out = plot_series(fig2_like(), width=40, height=10)
        plot_rows = [ln for ln in out.splitlines() if "|" in ln]
        assert len(plot_rows) == 10

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            plot_series(fig2_like(), width=5)

    def test_single_point(self):
        s = Series("dot")
        s.add(1, 10)
        out = plot_series([s])
        assert "x" in out

    def test_empty(self):
        assert plot_series([Series("void")]) == "(no data)"


class TestPlotLog:
    def test_from_experiment_log(self):
        log = ExperimentLog("fig02", "Boot time")
        for s in fig2_like():
            log.series.append(s)
        out = plot_log(log, x_label="# nodes")
        assert "legend:" in out
        assert "[s]" in out
