"""boot_report reconstruction: JSONL round-trip and rendering."""

import pytest

from repro.metrics.boot_report import (
    build_report,
    format_attribution,
    format_report,
    format_timeline,
    load_report,
)
from repro.metrics.tracing import JsonlSink, ListSink, Tracer


def synth_trace(tracer: Tracer) -> None:
    """A miniature deployment: one sim wave of two boots with phases,
    one wall-clock replay with per-layer reads and cache events."""
    trace_id, wave_id = tracer.allocate_ids()
    for i, node in enumerate(["n0", "n1"]):
        _, boot_id = tracer.record_span(
            "vm.boot", 0.0, 5.0 + i, trace_id=trace_id,
            parent_id=wave_id, vm_id=f"vm{i}", node=node)
        tracer.record_span("boot.phase", 0.0, 0.5, trace_id=trace_id,
                           parent_id=boot_id, phase="vmm")
        tracer.record_span("boot.phase", 0.5, 5.0 + i,
                           trace_id=trace_id, parent_id=boot_id,
                           phase="replay")
    tracer.record_span("deploy.wave", 0.0, 6.5, trace_id=trace_id,
                       span_id=wave_id, vms=2)

    with tracer.span("vm.boot", vm_id="real1"):
        tracer.event("block.read", layer="cow", path="/t/cow.qcow2",
                     offset=0, length=4096)
        tracer.event("block.read", layer="cache",
                     path="/t/cache.qcow2", offset=0, length=4096)
        tracer.event("block.read", layer="base", path="/t/base.raw",
                     offset=0, length=1024)
        tracer.event("cache.cor_fill", path="/t/cache.qcow2",
                     offset=0, length=1024)
        tracer.event("cache.rmw_fill", path="/t/cache.qcow2",
                     fill_bytes=512)
        tracer.event("cache.quota_stop", path="/t/cache.qcow2",
                     attempted_bytes=512)
        tracer.event("replay.summary", vm_id="real1",
                     base_path="/t/base.raw", base_bytes_read=1024,
                     ops_replayed=3)


@pytest.fixture
def report():
    tracer = Tracer()
    sink = ListSink()
    tracer.enable(sink)
    synth_trace(tracer)
    tracer.disable()
    return build_report(sink.records)


class TestBuildReport:
    def test_boots_with_phases_reconstructed(self, report):
        assert [b.vm_id for b in report.boots] == \
            ["vm0", "vm1", "real1"]
        vm1 = report.boots[1]
        assert vm1.node == "n1"
        assert vm1.clock == "sim"
        assert vm1.boot_time == 6.0
        assert [p.phase for p in vm1.phases] == ["vmm", "replay"]
        assert report.boots[2].clock == "wall"

    def test_boots_parent_onto_the_wave(self, report):
        wave = next(w for w in report.waves
                    if w["name"] == "deploy.wave")
        assert report.boots[0].parent_id == wave["span_id"]
        assert wave["vms"] == 2

    def test_layer_attribution_sums_reads(self, report):
        assert report.layer_bytes("cow") == 4096
        assert report.layer_bytes("cache") == 4096
        assert report.layer_bytes("base") == 1024
        assert report.attribution["base"].read_ops == 1
        assert report.attribution["base"].paths == \
            {"/t/base.raw": 1024}

    def test_cache_events_counted(self, report):
        assert report.cor_fills == 1
        assert report.cor_fill_bytes == 1024
        assert report.rmw_fills == 1
        assert report.rmw_fill_bytes == 512
        assert report.quota_stops == 1

    def test_summaries_collected(self, report):
        assert len(report.summaries) == 1
        assert report.summaries[0]["base_bytes_read"] == 1024


class TestJsonlRoundTrip:
    def test_file_report_equals_in_memory_report(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        tracer.enable(JsonlSink(path))
        synth_trace(tracer)
        tracer.disable()

        report = load_report(path)
        assert [b.vm_id for b in report.boots] == \
            ["vm0", "vm1", "real1"]
        assert report.layer_bytes("base") == 1024
        assert report.record_count == 15


class TestRendering:
    def test_timeline_lists_every_vm_by_clock(self, report):
        text = format_timeline(report)
        assert "sim clock, 2 boot(s)" in text
        assert "wall clock, 1 boot(s)" in text
        for vm in ("vm0", "vm1", "real1"):
            assert vm in text
        assert "replay 5.500" in text  # vm1's phase duration

    def test_attribution_table_orders_layers_top_down(self, report):
        text = format_attribution(report)
        assert text.index("cow") < text.index("cache") \
            < text.index("base")
        assert "quota stops: 1" in text

    def test_full_report_reconciles_replayer_accounting(self, report):
        text = format_report(report)
        assert "(match)" in text
        assert "MISMATCH" not in text

    def test_empty_trace_renders_gracefully(self):
        empty = build_report([])
        assert "no vm.boot spans" in format_timeline(empty)
        assert "no block.read" in format_attribution(empty)
