"""Tests for Series and ExperimentLog."""

import pytest

from repro.metrics.collectors import ExperimentLog, Series


class TestSeries:
    def test_add_and_access(self):
        s = Series("boot")
        s.add(1, 35.0)
        s.add(64, 140.0)
        assert s.xs() == [1, 64]
        assert s.ys() == [35.0, 140.0]
        assert s.y_at(64) == 140.0

    def test_y_at_missing(self):
        s = Series("boot")
        s.add(1, 35.0)
        with pytest.raises(KeyError):
            s.y_at(2)

    def test_monotonic(self):
        s = Series("m")
        for i, y in enumerate([1.0, 2.0, 3.0]):
            s.add(i, y)
        assert s.is_monotonic_increasing()
        s.add(3, 2.9)
        assert not s.is_monotonic_increasing()
        assert s.is_monotonic_increasing(tolerance=0.05)

    def test_flat(self):
        s = Series("f")
        for i, y in enumerate([10.0, 10.5, 9.8]):
            s.add(i, y)
        assert s.is_flat(tolerance=0.1)
        s.add(3, 15.0)
        assert not s.is_flat(tolerance=0.1)

    def test_growth_factor(self):
        s = Series("g")
        s.add(1, 35.0)
        s.add(64, 140.0)
        assert s.growth_factor() == pytest.approx(4.0)

    def test_growth_factor_empty_or_zero(self):
        assert Series("e").growth_factor() == float("inf")
        s = Series("z")
        s.add(0, 0.0)
        s.add(1, 5.0)
        assert s.growth_factor() == float("inf")

    def test_empty_is_flat_and_monotonic(self):
        s = Series("e")
        assert s.is_flat()
        assert s.is_monotonic_increasing()


class TestExperimentLog:
    def make(self):
        log = ExperimentLog("figX", "a test figure")
        s = log.new_series("curve-a")
        s.add(1, 10)
        s.add(2, 20)
        log.new_series("curve-b", unit="MB").add(1, 5)
        log.record_scalar("anchor", 42.5)
        log.note("hello")
        return log

    def test_get(self):
        log = self.make()
        assert log.get("curve-a").y_at(2) == 20
        with pytest.raises(KeyError):
            log.get("nope")

    def test_roundtrip_via_file(self, tmp_path):
        log = self.make()
        path = log.save(str(tmp_path))
        out = ExperimentLog.load(path)
        assert out.experiment_id == "figX"
        assert out.get("curve-a").points == [(1.0, 10.0), (2.0, 20.0)]
        assert out.get("curve-b").unit == "MB"
        assert out.scalars == {"anchor": 42.5}
        assert out.notes == ["hello"]

    def test_save_creates_directory(self, tmp_path):
        log = self.make()
        target = str(tmp_path / "deep" / "dir")
        path = log.save(target)
        import os

        assert os.path.exists(path)
