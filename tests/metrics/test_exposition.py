"""The strict exposition parser and its standalone renderer twin.

The parser is the fleet aggregator's front door *and* the adversarial
consumer of PR 5's renderer: anything
:meth:`MetricsRegistry.render_prometheus` emits must parse back to the
same typed samples, and anything malformed must be rejected with the
offending line.
"""

import math

import pytest

from repro.metrics.exposition import (
    ExpositionParseError,
    parse_prometheus,
    render_exposition,
)
from repro.metrics.registry import MetricsRegistry, set_registry


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


class TestRoundTrip:
    def test_registry_exposition_round_trips(self, registry):
        registry.counter("boots_total", node="n1").inc(3)
        registry.counter("boots_total", node="n2").inc(5)
        registry.gauge("cache_fill").set(0.75)
        registry.histogram("op_latency", op="read").observe(0.004)
        registry.describe("boots_total", "VM boots by node")
        text = registry.render_prometheus()
        exp = parse_prometheus(text)
        assert exp.value("boots_total", node="n1") == 3.0
        assert exp.value("boots_total", node="n2") == 5.0
        assert exp.sum("boots_total") == 8.0
        assert exp.value("cache_fill") == 0.75
        assert exp.kinds["boots_total"] == "counter"
        assert exp.kinds["cache_fill"] == "gauge"
        assert exp.helps["boots_total"] == "VM boots by node"
        assert exp.value("op_latency_count", op="read") == 1.0

    def test_render_exposition_round_trips_standalone(self):
        samples = [
            ("sim_demand_bytes_total", {}, 123.0),
            ("sim_cache_hit_bytes_total", {"node": "n01"}, 42.5),
            ("sim_cache_hit_bytes_total", {"node": "n02"}, 0.0),
        ]
        text = render_exposition(samples)
        exp = parse_prometheus(text)
        key = lambda s: (s[0], sorted(s[1].items()))  # noqa: E731
        assert sorted(exp.samples, key=key) == sorted(samples, key=key)
        # _total names type as counters by convention.
        assert exp.kinds["sim_demand_bytes_total"] == "counter"

    def test_label_escapes_round_trip(self):
        gnarly = 'a"b\\c\nd'
        text = render_exposition(
            [("weird_series", {"path": gnarly}, 1.0)])
        exp = parse_prometheus(text)
        assert exp.value("weird_series", path=gnarly) == 1.0

    def test_special_values(self):
        text = ('inf_series +Inf\n'
                'neginf_series -Inf\n'
                'nan_series NaN\n')
        exp = parse_prometheus(text)
        assert exp.value("inf_series") == math.inf
        assert exp.value("neginf_series") == -math.inf
        assert math.isnan(exp.value("nan_series"))

    def test_timestamp_is_validated_then_dropped(self):
        exp = parse_prometheus("reads_total 5 1700000000000\n")
        assert exp.value("reads_total") == 5.0

    def test_empty_renders_and_parses(self):
        assert render_exposition([]) == ""
        assert len(parse_prometheus("")) == 0

    def test_non_directive_comments_ignored(self):
        exp = parse_prometheus("# just a note\nups_total 1\n")
        assert exp.value("ups_total") == 1.0

    def test_accessors(self):
        exp = parse_prometheus(
            "a_total{x=\"1\"} 1\na_total{x=\"2\"} 2\nb_total 3\n")
        assert exp.families() == ["a_total", "b_total"]
        assert sorted(v for _l, v in exp.series("a_total")) == [1.0, 2.0]
        assert exp.value("a_total", x="9") is None
        assert exp.sum("missing") is None
        assert len(exp) == 3


class TestRejection:
    def assert_rejects(self, text, match):
        with pytest.raises(ExpositionParseError, match=match):
            parse_prometheus(text)

    def test_missing_final_newline(self):
        self.assert_rejects("reads_total 1", "missing final newline")

    def test_noncontiguous_blocks(self):
        self.assert_rejects("a_total 1\nb_total 2\na_total 3\n",
                            "reappears")

    def test_help_after_samples(self):
        self.assert_rejects("a_total 1\n# HELP a_total late\n",
                            "after samples")

    def test_duplicate_type(self):
        self.assert_rejects(
            "# TYPE a_total counter\n# TYPE a_total counter\n"
            "a_total 1\n", "duplicate # TYPE")

    def test_unknown_kind(self):
        self.assert_rejects("# TYPE a_total widget\na_total 1\n",
                            "unknown # TYPE kind")

    def test_duplicate_sample(self):
        self.assert_rejects('a_total{x="1"} 1\na_total{x="1"} 2\n',
                            "duplicate sample")

    def test_bad_escape(self):
        self.assert_rejects('a_total{x="\\t"} 1\n', "invalid escape")

    def test_unterminated_labels(self):
        self.assert_rejects('a_total{x="1" 1\n', "expected ',' or")
        self.assert_rejects('a_total{x="1\n', "unterminated value")

    def test_bad_value(self):
        self.assert_rejects("a_total pony\n", "not a number")

    def test_bad_timestamp(self):
        self.assert_rejects("a_total 1 2.5\n", "not an integer")

    def test_bad_name(self):
        self.assert_rejects("9lives 1\n", "must start with a metric")

    def test_error_carries_line_info(self):
        try:
            parse_prometheus("ok_total 1\nbad line here\n")
        except ExpositionParseError as exc:
            assert exc.lineno == 2
            assert "bad line" in exc.line
        else:
            pytest.fail("expected ExpositionParseError")
