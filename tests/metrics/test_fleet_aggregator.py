"""FleetAggregator: poll loop, backoff, staleness, derived signals.

Fake in-memory targets drive the control-plane mechanics under an
injected clock (backoff, staleness transitions, slow-node isolation);
the integration class at the bottom runs the ISSUE acceptance
scenario against a *real* multi-``BlockServer`` fleet — kill a node,
watch pending → firing, restart it, watch resolved.
"""

import json
import time

import pytest

from repro.imagefmt.raw import RawImage
from repro.metrics.fleet import (
    STATUS_OK,
    STATUS_STALE,
    STATUS_UNREACHABLE,
    FleetAggregator,
    HttpTarget,
    compute_signals,
)
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.remote import BlockServer, RemoteImage
from repro.units import KiB


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


class FakeTarget:
    """In-memory scrape target with scriptable behaviour."""

    def __init__(self, name, samples=None, health=None):
        self.name = name
        self.samples = dict(samples or {})
        self.health = health if health is not None else {"status": "ok"}
        self.failing = False
        self.raw_text = None  # overrides rendering when set
        self.delay = 0.0
        self.calls = 0

    def scrape(self, timeout):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        if self.failing:
            raise ConnectionError(f"{self.name} down")
        if self.raw_text is not None:
            return self.raw_text, self.health
        lines = "".join(f"{name} {value}\n"
                        for name, value in sorted(self.samples.items()))
        return lines, self.health


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPolling:
    def test_ingests_samples_and_marks_ok(self, registry):
        target = FakeTarget("n1", {"block_export_bytes_read_total": 42})
        agg = FleetAggregator([target], interval=1.0,
                              clock=ManualClock())
        snap = agg.poll_once()
        assert snap.poll == 1
        assert snap.nodes["n1"].status == STATUS_OK
        assert agg.store("n1").latest_sum(
            "block_export_bytes_read_total") == 42.0
        assert registry.counter("fleet_polls_total").value == 1
        assert snap.signals["nodes_ok"] == 1.0

    def test_target_management(self, registry):
        agg = FleetAggregator()
        agg.add_target(FakeTarget("a"))
        with pytest.raises(ValueError, match="duplicate"):
            agg.add_target(FakeTarget("a"))
        with pytest.raises(ValueError, match="no name"):
            agg.add_target(object())
        agg.remove_target("a")
        assert agg.targets == []

    def test_backoff_skips_then_retries(self, registry):
        clock = ManualClock()
        target = FakeTarget("n1")
        target.failing = True
        agg = FleetAggregator([target], interval=1.0, clock=clock,
                              backoff_base=1.0, backoff_max=8.0)
        agg.poll_once()
        assert target.calls == 1
        # Inside the backoff window the node is not re-scraped...
        clock.now = 0.5
        agg.poll_once()
        assert target.calls == 1
        # ...and the window doubles with each consecutive failure.
        clock.now = 1.0
        agg.poll_once()
        assert target.calls == 2
        clock.now = 2.9
        agg.poll_once()
        assert target.calls == 2
        clock.now = 3.0
        agg.poll_once()
        assert target.calls == 3
        assert registry.counter("fleet_scrape_errors_total",
                                node="n1").value == 3

    def test_staleness_horizon(self, registry):
        clock = ManualClock()
        target = FakeTarget("n1", {"x_total": 1})
        agg = FleetAggregator([target], interval=1.0, stale_polls=3,
                              clock=clock, backoff_base=0.5)
        assert agg.poll_once().nodes["n1"].status == STATUS_OK
        target.failing = True
        clock.now = 1.0
        assert agg.poll_once().nodes["n1"].status == STATUS_STALE
        # Past stale_polls * interval without a good scrape.
        clock.now = 5.0
        snap = agg.poll_once()
        assert snap.nodes["n1"].status == STATUS_UNREACHABLE
        assert snap.signals["unhealthy_fraction"] == 1.0
        # A never-scraped node is unreachable, not ok.
        agg.add_target(FakeTarget("n2"))
        fresh = agg._build_snapshot(clock.now)
        assert fresh.nodes["n2"].status == STATUS_UNREACHABLE

    def test_malformed_exposition_is_loud_failure(self, registry):
        target = FakeTarget("n1")
        target.raw_text = "no final newline"
        agg = FleetAggregator([target], interval=1.0,
                              clock=ManualClock())
        snap = agg.poll_once()
        assert snap.nodes["n1"].status == STATUS_UNREACHABLE
        assert "ExpositionParseError" in snap.nodes["n1"].error
        assert registry.counter("fleet_parse_errors_total",
                                node="n1").value == 1

    def test_degraded_health(self, registry):
        target = FakeTarget("n1", {"x_total": 1},
                            health={"status": "degraded"})
        agg = FleetAggregator([target], interval=1.0,
                              clock=ManualClock())
        snap = agg.poll_once()
        assert snap.nodes["n1"].status == "degraded"
        assert snap.node_signals("unhealthy")["n1"] == 1.0
        assert snap.node_signals("up")["n1"] == 1.0

    def test_slow_node_never_blocks_the_poll(self, registry):
        slow = FakeTarget("slow", {"x_total": 1})
        slow.delay = 3.0
        fast = FakeTarget("fast", {"x_total": 2})
        agg = FleetAggregator([slow, fast], interval=1.0, timeout=0.2)
        started = time.monotonic()
        snap = agg.poll_once()
        elapsed = time.monotonic() - started
        assert elapsed < 2.0, f"poll blocked on slow node ({elapsed:.2f}s)"
        assert snap.nodes["fast"].status == STATUS_OK
        assert snap.nodes["slow"].status == STATUS_UNREACHABLE
        assert "TimeoutError" in snap.nodes["slow"].error
        agg.stop()

    def test_snapshot_as_dict_is_json_serializable(self, registry):
        target = FakeTarget("n1", {"x_total": 3})
        agg = FleetAggregator([target], interval=1.0,
                              clock=ManualClock(),
                              rules=["node:up < 1"])
        snap = agg.poll_once()
        parsed = json.loads(json.dumps(snap.as_dict(), default=str))
        assert parsed["poll"] == 1
        assert parsed["nodes"][0]["name"] == "n1"

    def test_background_thread(self, registry):
        target = FakeTarget("n1", {"x_total": 1})
        agg = FleetAggregator([target], interval=0.05)
        agg.start()
        with pytest.raises(RuntimeError):
            agg.start()
        deadline = time.monotonic() + 5.0
        while agg.snapshot() is None and time.monotonic() < deadline:
            time.sleep(0.01)
        agg.stop()
        snap = agg.snapshot()
        assert snap is not None
        assert snap.nodes["n1"].status == STATUS_OK


class TestSignals:
    def poll(self, targets, registry_unused=None):
        agg = FleetAggregator(targets, interval=1.0,
                              clock=ManualClock())
        return agg.poll_once()

    def test_cache_hit_ratio_across_real_and_sim_nodes(self, registry):
        real = FakeTarget("real", {
            "block_export_cache_hit_bytes_total": 75,
            "block_export_cache_miss_bytes_total": 25})
        sim = FakeTarget("sim", {
            "sim_cache_hit_bytes_total": 25,
            "sim_cache_miss_bytes_total": 75})
        snap = self.poll([real, sim])
        assert snap.signals["cache_hit_ratio"] == pytest.approx(0.5)
        # Without demand counters the offload fraction is *unknown* —
        # it must read as no-data, never borrow the hit ratio as a
        # confident stand-in for an idle fleet.
        assert snap.signals["storage_offload_fraction"] is None

    def test_offload_prefers_demand_counters(self, registry):
        compute = FakeTarget("c1", {
            "sim_node_demand_read_bytes_total": 1000})
        storage = FakeTarget("storage", {
            "sim_storage_bytes_served_total": 250})
        snap = self.poll([compute, storage])
        assert snap.signals["storage_offload_fraction"] == \
            pytest.approx(0.75)

    def test_wire_and_prefetch_ratios(self, registry):
        node = FakeTarget("n1", {
            "block_export_wire_compressed_bytes_raw_total": 1000,
            "block_export_wire_compressed_bytes_total": 250,
            "prefetch_bytes_total": 100,
            "prefetch_hit_bytes_total": 80,
            "prefetch_wasted_bytes_total": 5})
        snap = self.poll([node])
        assert snap.signals["wire_compression_ratio"] == \
            pytest.approx(4.0)
        assert snap.signals["prefetch_hit_ratio"] == pytest.approx(0.8)
        assert snap.signals["prefetch_wasted_ratio"] == \
            pytest.approx(0.05)

    def test_merged_read_latency(self, registry):
        a = FakeTarget("a")
        a.raw_text = (
            'block_export_op_latency_mean_ms{op="read",export="x"} 10\n'
            'block_export_op_latency_mean_ms{op="write",export="x"} 99\n'
            'block_export_op_latency_count{op="read",export="x"} 9\n'
            'block_export_op_latency_p99_ms{op="read",export="x"} 30\n')
        b = FakeTarget("b")
        b.raw_text = (
            'block_export_op_latency_mean_ms{op="read",export="y"} 20\n'
            'block_export_op_latency_count{op="read",export="y"} 1\n'
            'block_export_op_latency_p99_ms{op="read",export="y"} 50\n')
        snap = self.poll([a, b])
        # Count-weighted mean: (10*9 + 20*1) / 10; p99 is the max.
        assert snap.signals["read_latency_ms_mean"] == \
            pytest.approx(11.0)
        assert snap.signals["read_latency_ms_p99"] == pytest.approx(50.0)

    def test_insufficient_data_yields_none(self, registry):
        snap = self.poll([FakeTarget("n1", {"unrelated_total": 1})])
        assert snap.signals["cache_hit_ratio"] is None
        assert snap.signals["wire_compression_ratio"] is None
        assert snap.signals["read_latency_ms_mean"] is None
        assert compute_signals(snap)["prefetch_hit_ratio"] is None

    def test_fleet_gauges_exported(self, registry):
        self.poll([FakeTarget("n1", {
            "block_export_cache_hit_bytes_total": 9,
            "block_export_cache_miss_bytes_total": 1})])
        assert registry.gauge("fleet_nodes", status="ok").value == 1
        assert registry.gauge("fleet_cache_hit_ratio").value == \
            pytest.approx(0.9)


class TestAlertsThroughAggregator:
    def test_backoff_skips_still_advance_alert_streaks(self, registry):
        """Alert lifecycles are deterministic in *polls*: a node inside
        its backoff window is not re-scraped, but its (failing) state
        still advances node-scoped rules."""
        clock = ManualClock()
        target = FakeTarget("n1", {"x_total": 1})
        agg = FleetAggregator(
            [target], interval=1.0, clock=clock, backoff_base=100.0,
            rules=["node:up < 1 for 3 resolve 1"])
        agg.poll_once()
        target.failing = True
        clock.now = 1.0
        assert [e.state for e in agg.poll_once().events] == ["pending"]
        # Polls 3 and 4 skip the scrape entirely (backoff 100s) yet
        # the streak still reaches for_polls and fires.
        clock.now = 2.0
        assert agg.poll_once().events == []
        clock.now = 3.0
        snap = agg.poll_once()
        assert [e.state for e in snap.events] == ["firing"]
        assert target.calls == 2
        assert snap.active_alerts[0]["state"] == "firing"


class TestHttpTarget:
    def test_from_url_normalisation(self):
        t = HttpTarget.from_url("http://10.0.0.1:9100/metrics")
        assert t.base == "http://10.0.0.1:9100"
        assert t.name == "10.0.0.1:9100"
        t2 = HttpTarget.from_url("http://h:1/healthz/", name="n")
        assert t2.base == "http://h:1"
        assert t2.name == "n"


class TestRealFleet:
    @pytest.mark.timeout(60)
    def test_kill_and_restart_drives_alert_lifecycle(self, registry,
                                                     small_base):
        """ISSUE acceptance (real half): a 3-node BlockServer fleet,
        one node killed and restarted, drives a deterministic
        pending → firing → resolved transition within bounded polls."""
        servers = []
        bases = []
        try:
            for _ in range(3):
                base = RawImage.open(small_base)
                server = BlockServer(telemetry_port=0,
                                     registry=MetricsRegistry())
                server.add_export("vmi", base)
                servers.append(server)
                bases.append(base)
            # Real datapath traffic so /metrics carries live counters.
            for server in servers:
                with RemoteImage.connect(server.url("vmi")) as img:
                    img.read(0, 64 * KiB)

            agg = FleetAggregator(
                [HttpTarget.from_url(s.telemetry.url, name=f"node{i}")
                 for i, s in enumerate(servers)],
                interval=0.1, timeout=2.0,
                rules=["node:up < 1 for 2 resolve 1"])

            snap = agg.poll_once()
            assert snap.signals["nodes_ok"] == 3.0
            assert agg.store("node0").latest_sum(
                "block_export_bytes_read_total") >= 64 * KiB

            servers[2].close()
            states = []
            for _ in range(4):
                states += [(e.instance, e.state)
                           for e in agg.poll_once().events]
            assert states == [("node2", "pending"),
                              ("node2", "firing")]

            # Bring the node back (fresh telemetry port — re-point the
            # target; the alert state is keyed by node name and
            # persists across the swap).
            base = RawImage.open(small_base)
            bases.append(base)
            revived = BlockServer(telemetry_port=0,
                                  registry=MetricsRegistry())
            revived.add_export("vmi", base)
            servers[2] = revived
            agg.remove_target("node2")
            agg.add_target(HttpTarget.from_url(
                revived.telemetry.url, name="node2"))
            snap = agg.poll_once()
            assert [(e.instance, e.state) for e in snap.events] == \
                [("node2", "resolved")]
            assert snap.signals["nodes_ok"] == 3.0
            agg.stop()
        finally:
            for server in servers:
                server.close()
            for base in bases:
                base.close()
