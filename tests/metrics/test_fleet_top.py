"""Dashboard rendering + the fleet_top / boot_report CLI surfaces.

The CLI tests run the actual tools as subprocesses against a live
``BlockServer`` — the same invocation a user types, end to end.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.imagefmt.raw import RawImage
from repro.metrics.ascii_plot import sparkline
from repro.metrics.fleet import FleetAggregator
from repro.metrics.fleet_dashboard import SignalHistory, render_dashboard
from repro.metrics.flight_recorder import FlightRecorder
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.metrics.telemetry_server import TelemetryServer
from repro.remote import BlockServer

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


def run_tool(tool, *args, timeout=60):
    return subprocess.run(
        [sys.executable, os.path.join(REPO, "tools", tool), *args],
        capture_output=True, text=True, timeout=timeout,
        env={**os.environ,
             "PYTHONPATH": os.path.join(REPO, "src")})


class TestSparkline:
    def test_scales_to_range(self):
        line = sparkline([0.0, 0.5, 1.0], width=3)
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series_renders_mid_height(self):
        line = sparkline([5.0, 5.0], width=4)
        assert set(line.strip()) == {"▄"}

    def test_empty_is_placeholder(self):
        assert sparkline([], width=5) == "-----"

    def test_explicit_bounds(self):
        # With lo/hi pinned, 0.5 sits mid-scale even if the series
        # never spans the range.
        line = sparkline([0.5], width=1, lo=0.0, hi=1.0)
        assert line in ("▄", "▅")


class _Target:
    def __init__(self, name, hit, miss):
        self.name = name
        self.hit, self.miss = hit, miss

    def scrape(self, timeout):
        return (f"block_export_cache_hit_bytes_total {self.hit}\n"
                f"block_export_cache_miss_bytes_total {self.miss}\n",
                {"status": "ok", "queue_depth": 0})


class TestDashboard:
    def test_renders_signals_nodes_and_alerts(self, registry):
        agg = FleetAggregator(
            [_Target("alpha", 90, 10), _Target("beta", 10, 90)],
            interval=1.0, rules=["node:cache_hit_ratio < 50%"])
        history = SignalHistory()
        snap = agg.poll_once()
        history.observe(snap)
        frame = render_dashboard(snap, history)
        assert "poll 1" in frame and "2 nodes" in frame
        assert "alpha" in frame and "beta" in frame
        assert "cache hit" in frame
        assert "ALERTS" in frame and "firing" in frame
        # beta breaches (10% hit), alpha does not.
        alert_lines = [l for l in frame.splitlines() if "firing" in l]
        assert any("beta" in l for l in alert_lines)

    def test_no_alerts_footer(self, registry):
        agg = FleetAggregator([_Target("a", 1, 1)], interval=1.0)
        snap = agg.poll_once()
        assert "no active alerts" in render_dashboard(snap)

    def test_idle_offload_renders_as_no_data(self, registry):
        # Regression: with no demand counters anywhere the offload
        # signal is None; the dashboard row must show n/a, not a
        # borrowed hit-ratio percentage or a zero.
        agg = FleetAggregator([_Target("a", 90, 10)], interval=1.0)
        snap = agg.poll_once()
        assert snap.signals["storage_offload_fraction"] is None
        offload_row = next(l for l in render_dashboard(snap).splitlines()
                           if "offload" in l)
        assert "n/a" in offload_row
        assert "%" not in offload_row


class TestFleetTopCli:
    @pytest.mark.timeout(90)
    def test_once_json_against_live_server(self, registry, small_base):
        base = RawImage.open(small_base)
        server = BlockServer(telemetry_port=0)
        server.add_export("vmi", base)
        try:
            proc = run_tool("fleet_top.py", "--once", "--json",
                            server.telemetry.url)
            assert proc.returncode == 0, proc.stderr
            snap = json.loads(proc.stdout)
            assert snap["poll"] == 1
            assert snap["nodes"][0]["status"] == "ok"
            assert snap["signals"]["nodes_ok"] == 1.0

            proc = run_tool("fleet_top.py", "--once",
                            server.telemetry.url)
            assert proc.returncode == 0, proc.stderr
            assert "fleet · poll 1" in proc.stdout
        finally:
            server.close()
            base.close()

    def test_bad_rule_is_a_usage_error(self):
        proc = run_tool("fleet_top.py", "--once",
                        "--rule", "not a rule !!",
                        "http://127.0.0.1:1")
        assert proc.returncode == 2
        assert "unparseable rule" in proc.stderr


class TestBootReportUrl:
    @pytest.mark.timeout(90)
    def test_report_pulls_live_traces_endpoint(self, registry):
        """Satellite (c): boot_report accepts http://host:port[/traces]
        and reports off the node's retained ring."""
        recorder = FlightRecorder(capacity=64)
        recorder.append({
            "type": "span", "name": "vm.boot", "start": 0.0,
            "end": 2.5, "clock": "wall", "trace_id": "t1",
            "span_id": "s1", "parent_id": None,
            "attrs": {"vm_id": "vm0"}})
        recorder.append({
            "type": "event", "name": "block.read", "ts": 1.0,
            "trace_id": "t1", "span_id": "e1", "parent_id": "s1",
            "attrs": {"layer": "base", "path": "/t/base.raw",
                      "offset": 0, "length": 4096}})
        srv = TelemetryServer(port=0, traces=recorder)
        try:
            # Bare base URL: completed to /traces?n=<all> internally.
            proc = run_tool("boot_report.py", srv.url)
            assert proc.returncode == 0, proc.stderr
            assert "(2 records)" in proc.stdout
            assert "vm0" in proc.stdout
            # Explicit /traces URL works too.
            proc = run_tool("boot_report.py", f"{srv.url}/traces")
            assert proc.returncode == 0, proc.stderr
            assert "(2 records)" in proc.stdout
        finally:
            srv.close()

    def test_unreachable_url_is_reported_not_raised(self):
        proc = run_tool("boot_report.py", "http://127.0.0.1:1/traces")
        assert proc.returncode == 1
        assert "error:" in proc.stderr
