"""The black-box flight recorder: ring bounding, sink teeing, dump
contents, and the SIGUSR2 / excepthook triggers."""

import json
import os
import signal
import sys

import pytest

from repro.metrics.flight_recorder import FlightRecorder, get_recorder
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.metrics.tracing import TRACER, ListSink


@pytest.fixture(autouse=True)
def clean_state():
    TRACER.disable()
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield
    TRACER.disable()
    set_registry(old)
    rec = get_recorder()
    if rec is not None:
        rec.uninstall()


def event(i):
    return {"type": "event", "name": f"e{i}", "ts": float(i),
            "attrs": {}}


class TestRing:
    def test_ring_keeps_only_the_tail(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.append(event(i))
        assert rec.seen == 10
        assert [r["name"] for r in rec.records()] \
            == ["e6", "e7", "e8", "e9"]
        assert [r["name"] for r in rec.records(2)] == ["e8", "e9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_is_a_tracer_sink(self):
        rec = FlightRecorder(capacity=16)
        TRACER.enable(rec)
        with TRACER.span("wave"):
            TRACER.event("block.read", layer="base", length=4096)
        TRACER.disable()
        names = [r["name"] for r in rec.records()]
        assert names == ["block.read", "wave"]

    def test_tee_preserves_inner_sink(self):
        inner = ListSink()
        rec = FlightRecorder(capacity=2, inner=inner)
        for i in range(5):
            rec.append(event(i))
        assert len(inner.records) == 5  # full record survives the tee
        assert len(rec.records()) == 2  # ring stays bounded
        rec.flush()
        rec.close()


class TestDump:
    def test_dump_contains_records_and_metrics(self, tmp_path,
                                               registry=None):
        from repro.metrics.registry import get_registry
        get_registry().counter("boots_total").inc(7)
        rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path))
        rec.append(event(1))
        path = rec.dump(reason="test")
        with open(path) as f:
            snap = json.load(f)
        assert snap["reason"] == "test"
        assert snap["pid"] == os.getpid()
        assert [r["name"] for r in snap["records"]] == ["e1"]
        assert snap["metrics"]["boots_total"][0]["value"] == 7
        # Auto-named dumps number themselves.
        second = rec.dump()
        assert second != path and os.path.exists(second)

    def test_sigusr2_triggers_dump(self, tmp_path):
        rec = FlightRecorder(capacity=8,
                             dump_dir=str(tmp_path)).install()
        try:
            assert get_recorder() is rec
            rec.append(event(1))
            os.kill(os.getpid(), signal.SIGUSR2)
            # Delivery is synchronous for a same-process kill on the
            # main thread (the handler runs before kill returns).
            assert rec.dumps == 1
            dumps = [p for p in os.listdir(tmp_path)
                     if p.startswith("flightrec-")]
            assert len(dumps) == 1
            with open(tmp_path / dumps[0]) as f:
                assert "signal" in json.load(f)["reason"]
        finally:
            rec.uninstall()

    def test_excepthook_dumps_then_chains(self, tmp_path, capsys):
        rec = FlightRecorder(capacity=8,
                             dump_dir=str(tmp_path)).install(
                                 signum=None)
        try:
            rec.append(event(1))
            seen = []
            rec._prev_excepthook = \
                lambda *a: seen.append(a[0].__name__)
            sys.excepthook(ValueError, ValueError("x"), None)
            assert rec.dumps == 1
            assert seen == ["ValueError"]
        finally:
            rec.uninstall()

    def test_uninstall_restores_hooks(self):
        prev_hook = sys.excepthook
        prev_sig = signal.getsignal(signal.SIGUSR2)
        rec = FlightRecorder().install()
        assert sys.excepthook is not prev_hook
        rec.uninstall()
        assert sys.excepthook is prev_hook
        assert signal.getsignal(signal.SIGUSR2) == prev_sig
        assert get_recorder() is None
