"""The metrics registry: families, thread safety, collectors, export."""

import threading

import pytest

from repro.metrics.registry import (
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFamilies:
    def test_counter_get_or_create_is_keyed_on_labels(self, registry):
        a = registry.counter("reads_total", layer="base")
        b = registry.counter("reads_total", layer="base")
        c = registry.counter("reads_total", layer="cache")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("boots_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("boots_total")

    def test_counter_cannot_decrease(self, registry):
        with pytest.raises(ValueError):
            registry.counter("n_total").inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        g = registry.gauge("inflight")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self, registry):
        counter = registry.counter("hits_total", layer="cache")
        n_threads, n_incs = 8, 5000
        start = threading.Barrier(n_threads)

        def worker():
            start.wait()
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_incs

    def test_concurrent_get_or_create_returns_one_instance(
            self, registry):
        instances = []
        start = threading.Barrier(8)

        def worker():
            start.wait()
            instances.append(registry.counter("raced_total", k="v"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(i) for i in instances}) == 1

    def test_concurrent_histogram_observes_and_reads(self, registry):
        hist = registry.histogram("op_latency", op="read")
        n_threads, n_obs = 6, 2000
        # Parties: the observers, the reader, and the main thread.
        start = threading.Barrier(n_threads + 2)
        done = threading.Event()

        def observer(scale):
            start.wait()
            for i in range(n_obs):
                hist.observe(0.001 * scale * (1 + i % 10))

        def reader():
            # Summaries taken mid-update must be internally
            # consistent (the ISSUE 3 satellite: summary() used to
            # read unlocked).
            start.wait()
            while not done.is_set():
                summ = hist.summary()
                assert summ["count"] >= 0
                if summ["count"]:
                    assert summ["max_ms"] >= summ["mean_ms"] > 0

        threads = [threading.Thread(target=observer, args=(s,))
                   for s in range(1, n_threads + 1)]
        rt = threading.Thread(target=reader)
        rt.start()
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join()
        done.set()
        rt.join()
        assert hist.summary()["count"] == n_threads * n_obs


class TestCollectors:
    def test_collector_samples_appear_and_dead_is_pruned(
            self, registry):
        alive = [True]

        def collector():
            if not alive[0]:
                return None
            return [("live_metric", {"src": "test"}, 42.0)]

        registry.register_collector(collector)
        assert ("live_metric", {"src": "test"}, 42.0) \
            in registry.samples()

        alive[0] = False
        registry.samples()  # observes None -> prunes
        assert all(name != "live_metric"
                   for name, _l, _v in registry.samples())

    def test_unregister_is_idempotent(self, registry):
        fn = registry.register_collector(lambda: [])
        registry.unregister_collector(fn)
        registry.unregister_collector(fn)
        assert registry.samples() == []


class TestExport:
    def test_prometheus_rendering(self, registry):
        registry.counter("boots_total", node="n1").inc(3)
        registry.gauge("slots_free").set(7)
        text = registry.render_prometheus()
        assert "# TYPE boots_total counter" in text
        assert 'boots_total{node="n1"} 3' in text
        assert "# TYPE slots_free gauge" in text
        assert "slots_free 7" in text

    def test_histogram_expansion(self, registry):
        hist = registry.histogram("lat")
        for _ in range(10):
            hist.observe(0.002)
        names = {name for name, _l, _v in registry.samples()}
        assert {"lat_count", "lat_mean_ms", "lat_max_ms", "lat_ms"} \
            <= names

    def test_snapshot_groups_by_name(self, registry):
        registry.counter("c_total", k="a").inc()
        registry.counter("c_total", k="b").inc(2)
        snap = registry.snapshot()
        assert len(snap["c_total"]) == 2
        assert sum(s["value"] for s in snap["c_total"]) == 3

    def test_reset_drops_everything(self, registry):
        registry.counter("gone_total").inc()
        registry.register_collector(lambda: [("x", {}, 1.0)])
        registry.reset()
        assert registry.samples() == []


def _parse_exposition(text):
    """Parse the rendered text back into {name: {(label tuples): value}}
    plus the HELP/TYPE maps — the round-trip half of the escaping
    tests (a scraper-grade parser for exactly what we render)."""
    import re
    samples, helps, types = {}, {}, {}
    label_re = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
    unescape = {r"\\": "\\", r"\"": '"', r"\n": "\n"}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _h, _k, name, help_text = line.split(" ", 3)
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            _h, _k, name, kind = line.split(" ", 3)
            types[name] = kind
        else:
            metric, value = line.rsplit(" ", 1)
            if "{" in metric:
                name, _b, rest = metric.partition("{")
                labels = tuple(
                    (k, re.sub(r"\\.",
                               lambda m: unescape.get(m.group(0),
                                                      m.group(0)),
                               v))
                    for k, v in label_re.findall(rest[:-1]))
            else:
                name, labels = metric, ()
            samples.setdefault(name, {})[labels] = float(value)
    return samples, helps, types


class TestExpositionFormat:
    def test_label_values_round_trip_through_escaping(self, registry):
        nasty = 'we"ird\\na\nme'
        registry.counter("reads_total", export=nasty).inc(5)
        samples, _h, _t = _parse_exposition(
            registry.render_prometheus())
        assert samples["reads_total"][(("export", nasty),)] == 5.0

    def test_every_series_has_help_and_type_in_order(self, registry):
        registry.counter("boots_total", node="n1").inc()
        registry.gauge("slots_free").set(3)
        registry.histogram("lat").observe(0.001)
        registry.register_collector(
            lambda: [("ext_bytes_total", {"src": "c"}, 9.0)])
        text = registry.render_prometheus()
        samples, helps, types = _parse_exposition(text)
        for name in samples:
            assert name in helps, f"{name} has no HELP"
            assert name in types, f"{name} has no TYPE"
        # HELP immediately precedes TYPE, which precedes the samples.
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# HELP "):
                name = line.split()[2]
                assert lines[i + 1].startswith(f"# TYPE {name} ")
                assert lines[i + 2].startswith(name)

    def test_series_kinds(self, registry):
        registry.counter("boots_total").inc()
        registry.gauge("slots_free").set(1)
        registry.histogram("lat").observe(0.002)
        registry.register_collector(
            lambda: [("coll_bytes_total", {}, 1.0),
                     ("coll_inflight", {}, 2.0)])
        _s, _h, types = _parse_exposition(registry.render_prometheus())
        assert types["boots_total"] == "counter"
        assert types["slots_free"] == "gauge"
        assert types["lat_count"] == "counter"
        assert types["lat_ms"] == "gauge"
        assert types["coll_bytes_total"] == "counter"
        assert types["coll_inflight"] == "gauge"

    def test_family_blocks_are_contiguous(self, registry):
        """Primitive and collector samples of the same name must merge
        into one block — interleaved families are invalid exposition
        output."""
        registry.counter("reads_total", src="prim").inc(1)
        registry.counter("zz_total").inc(1)
        registry.register_collector(
            lambda: [("reads_total", {"src": "coll"}, 2.0)])
        text = registry.render_prometheus()
        starts = [i for i, line in enumerate(text.splitlines())
                  if line.startswith("# TYPE reads_total ")]
        assert len(starts) == 1
        samples, _h, _t = _parse_exposition(text)
        assert len(samples["reads_total"]) == 2

    def test_describe_sets_help_text(self, registry):
        registry.counter("boots_total").inc()
        registry.describe("boots_total", "VM boots since start")
        _s, helps, _t = _parse_exposition(registry.render_prometheus())
        assert helps["boots_total"] == "VM boots since start"

    def test_special_float_values(self, registry):
        registry.gauge("weird").set(float("inf"))
        registry.gauge("weirder").set(float("nan"))
        text = registry.render_prometheus()
        assert "weird +Inf" in text
        assert "weirder NaN" in text


class TestProcessWide:
    def test_set_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(old)
        assert get_registry() is old
