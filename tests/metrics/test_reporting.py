"""Tests for paper-style formatting and shape checks."""

import pytest

from repro.metrics.collectors import ExperimentLog, Series
from repro.metrics.reporting import (
    crossover_x,
    format_comparison,
    format_series_table,
    relative_error,
    shape_check,
)


class TestFormatSeriesTable:
    def test_basic_layout(self):
        log = ExperimentLog("fig02", "Booting time")
        a = log.new_series("QCOW2 - 1GbE")
        a.add(1, 35.0)
        a.add(64, 140.0)
        b = log.new_series("QCOW2 - 32GbIB")
        b.add(1, 35.0)
        out = format_series_table(log, "# nodes")
        assert "fig02" in out
        assert "QCOW2 - 1GbE" in out
        assert "140.0" in out
        lines = out.splitlines()
        # one row per x value (1 and 64) below the header + rule
        assert len([ln for ln in lines if ln.lstrip().startswith(
            ("1 ", "64 "))]) == 2

    def test_missing_points_blank(self):
        log = ExperimentLog("f", "t")
        a = log.new_series("a")
        a.add(1, 1.0)
        b = log.new_series("b")
        b.add(2, 2.0)
        out = format_series_table(log)
        assert out.count("1.0") == 1
        assert out.count("2.0") == 1

    def test_scalars_and_notes_rendered(self):
        log = ExperimentLog("f", "t")
        log.record_scalar("x_paper", 93.0)
        log.note("metadata overhead included")
        out = format_series_table(log)
        assert "x_paper: 93.00" in out
        assert "note: metadata overhead included" in out


class TestComparisonHelpers:
    def test_format_comparison(self):
        line = format_comparison("centos", 93.0, 89.2, " MB")
        assert "paper=93 MB" in line
        assert "measured=89.2 MB" in line
        assert "x0.96" in line

    def test_relative_error(self):
        assert relative_error(100, 85) == pytest.approx(0.15)
        assert relative_error(0, 5) == float("inf")

    def test_shape_check_pass_and_fail(self):
        shape_check(True, "fine")
        with pytest.raises(AssertionError, match="paper claim"):
            shape_check(False, "paper claim")


class TestCrossover:
    def test_found(self):
        a = Series("disk")
        b = Series("net")
        for x, (ya, yb) in zip([1, 8, 16, 64],
                               [(10, 50), (40, 55), (80, 60), (300, 70)]):
            a.add(x, ya)
            b.add(x, yb)
        assert crossover_x(a, b) == 16

    def test_none_when_never_crosses(self):
        a = Series("a")
        b = Series("b")
        for x in (1, 2):
            a.add(x, 1)
            b.add(x, 2)
        assert crossover_x(a, b) is None

    def test_disjoint_axes(self):
        a = Series("a")
        a.add(1, 10)
        b = Series("b")
        b.add(2, 1)
        assert crossover_x(a, b) is None
