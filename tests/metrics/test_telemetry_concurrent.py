"""Satellite (d): concurrent scrapes racing a mutating datapath.

N scraper threads hammer a live ``BlockServer``'s /metrics and
/healthz while client I/O churns the underlying counters.  Every
single response must parse under the *strict* exposition parser —
a torn render (sample written while a counter moves, duplicate
series, truncated line) would be rejected loudly.  This is the
renderer-under-contention validation the strict parser exists for.
"""

import json
import threading
import urllib.request

import pytest

from repro.imagefmt.raw import RawImage
from repro.metrics.exposition import parse_prometheus
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.remote import BlockServer, RemoteImage
from repro.units import KiB

SCRAPERS = 4
SCRAPES_EACH = 25


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


@pytest.mark.timeout(120)
def test_concurrent_scrapes_all_parse(registry, small_base):
    base = RawImage.open(small_base)
    server = BlockServer(telemetry_port=0)
    server.add_export("vmi", base)
    url = server.telemetry.url
    stop = threading.Event()
    errors = []

    def churn():
        # Datapath load: keep the export counters moving the whole
        # time the scrapers are reading them.
        try:
            with RemoteImage.connect(server.url("vmi")) as img:
                i = 0
                while not stop.is_set():
                    img.read((i % 32) * 64 * KiB, 64 * KiB)
                    i += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"churn: {exc!r}")

    def scrape(worker_id):
        try:
            for _ in range(SCRAPES_EACH):
                with urllib.request.urlopen(f"{url}/metrics",
                                            timeout=10) as resp:
                    text = resp.read().decode("utf-8")
                exposition = parse_prometheus(text)
                assert len(exposition) > 0
                with urllib.request.urlopen(f"{url}/healthz",
                                            timeout=10) as resp:
                    json.loads(resp.read().decode("utf-8"))
        except Exception as exc:
            errors.append(f"scraper {worker_id}: {exc!r}")

    writer = threading.Thread(target=churn, daemon=True)
    scrapers = [threading.Thread(target=scrape, args=(i,), daemon=True)
                for i in range(SCRAPERS)]
    writer.start()
    for thread in scrapers:
        thread.start()
    for thread in scrapers:
        thread.join(timeout=90)
        assert not thread.is_alive(), "scraper wedged"
    stop.set()
    writer.join(timeout=30)
    assert errors == []

    # Self-observability: the endpoint counted its own scrapes and
    # timed its renders, per path.
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as resp:
        exposition = parse_prometheus(resp.read().decode("utf-8"))
    scrapes = exposition.value("telemetry_scrapes_total",
                               path="/metrics")
    assert scrapes >= SCRAPERS * SCRAPES_EACH
    assert exposition.value("telemetry_scrapes_total",
                            path="/healthz") >= SCRAPERS * SCRAPES_EACH
    assert exposition.value("telemetry_render_seconds_count",
                            path="/metrics") >= SCRAPERS * SCRAPES_EACH

    server.close()
    base.close()


def test_healthz_reports_queue_depth_and_prefetch(registry, small_base):
    """Satellite (b): /healthz surfaces event-loop queue depth and
    prefetcher effectiveness counters."""
    base = RawImage.open(small_base)
    server = BlockServer(telemetry_port=0)
    server.add_export("vmi", base)
    try:
        with RemoteImage.connect(server.url("vmi")) as img:
            img.read(0, 64 * KiB)
        with urllib.request.urlopen(f"{server.telemetry.url}/healthz",
                                    timeout=10) as resp:
            doc = json.loads(resp.read().decode("utf-8"))
        assert doc["status"] == "ok"
        assert isinstance(doc["queue_depth"], int)
        assert doc["queue_depth"] >= 0
        assert set(doc["prefetch"]) == {"hit_bytes", "wasted_bytes"}
        assert doc["prefetch"]["hit_bytes"] >= 0
    finally:
        server.close()
        base.close()
