"""The embedded telemetry endpoint: /metrics, /healthz, /traces.

The tier-1 smoke path starts a real :class:`BlockServer` with a
telemetry port, scrapes both endpoints over actual HTTP, validates the
Prometheus exposition format line by line, and asserts the endpoint
thread shuts down cleanly with the server.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.imagefmt.raw import RawImage
from repro.metrics.flight_recorder import FlightRecorder
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.metrics.telemetry_server import TelemetryServer
from repro.remote import BlockServer
from repro.units import KiB


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


def fetch(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def assert_valid_exposition(text):
    """Line-by-line structural check of the 0.0.4 text format: every
    series introduced by HELP-then-TYPE, samples contiguous per
    name, names never revisited."""
    seen = set()
    lines = text.splitlines()
    assert lines, "empty exposition"
    i = 0
    while i < len(lines):
        line = lines[i]
        assert line.startswith("# HELP "), f"line {i}: expected HELP"
        name = line.split()[2]
        assert name not in seen, f"{name} appears twice"
        seen.add(name)
        type_line = lines[i + 1]
        assert type_line.startswith(f"# TYPE {name} ")
        kind = type_line.split()[3]
        assert kind in ("counter", "gauge", "histogram",
                        "summary", "untyped")
        i += 2
        saw_sample = False
        while i < len(lines) and not lines[i].startswith("#"):
            sample = lines[i]
            assert sample.startswith(name), \
                f"line {i}: {sample!r} outside its {name} block"
            rest = sample[len(name):]
            assert rest.startswith((" ", "{")), \
                f"line {i}: name mismatch in {sample!r}"
            value = sample.rsplit(" ", 1)[1]
            if value not in ("+Inf", "-Inf", "NaN"):
                float(value)
            saw_sample = True
            i += 1
        assert saw_sample, f"{name}: headers without samples"


class TestStandalone:
    def test_metrics_endpoint_renders_registry(self, registry):
        registry.counter("boots_total", node="n1").inc(3)
        srv = TelemetryServer(port=0)
        try:
            status, body = fetch(f"{srv.url}/metrics")
            assert status == 200
            assert 'boots_total{node="n1"} 3' in body
            assert_valid_exposition(body)
        finally:
            srv.close()

    def test_healthz_without_callable_is_ok(self, registry):
        srv = TelemetryServer(port=0)
        try:
            status, body = fetch(f"{srv.url}/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            srv.close()

    def test_healthz_degraded_maps_to_503(self, registry):
        srv = TelemetryServer(
            port=0, health=lambda: {"status": "degraded",
                                    "why": "disk on fire"})
        try:
            status, body = fetch(f"{srv.url}/healthz")
            assert status == 503
            assert json.loads(body)["why"] == "disk on fire"
        finally:
            srv.close()

    def test_healthz_exception_is_degraded_not_500(self, registry):
        def broken():
            raise RuntimeError("boom")
        srv = TelemetryServer(port=0, health=broken)
        try:
            status, body = fetch(f"{srv.url}/healthz")
            assert status == 503
            assert "boom" in json.loads(body)["detail"]
        finally:
            srv.close()

    def test_traces_tails_the_recorder(self, registry):
        rec = FlightRecorder(capacity=8)
        for i in range(12):
            rec.append({"type": "event", "name": f"e{i}", "ts": 0.0,
                        "attrs": {}})
        srv = TelemetryServer(port=0, traces=rec)
        try:
            status, body = fetch(f"{srv.url}/traces?n=3")
            assert status == 200
            names = [json.loads(line)["name"]
                     for line in body.splitlines()]
            assert names == ["e9", "e10", "e11"]
            status, _ = fetch(f"{srv.url}/traces?n=bogus")
            assert status == 400
        finally:
            srv.close()

    def test_unknown_path_is_404(self, registry):
        srv = TelemetryServer(port=0)
        try:
            status, _ = fetch(f"{srv.url}/nope")
            assert status == 404
        finally:
            srv.close()


class TestBlockServerIntegration:
    def test_smoke_scrape_and_clean_shutdown(self, registry,
                                             small_base):
        """ISSUE acceptance: BlockServer with a telemetry port, both
        endpoints scraped for real, exposition validated line by
        line, endpoint thread gone after close()."""
        base = RawImage.open(small_base)
        before = threading.active_count()
        server = BlockServer(telemetry_port=0)
        server.add_export("base", base)
        url = server.telemetry.url
        from repro.remote import RemoteImage
        with RemoteImage.connect(server.url("base")) as img:
            img.read(0, 64 * KiB)

        status, metrics = fetch(f"{url}/metrics")
        assert status == 200
        assert_valid_exposition(metrics)
        assert "block_export_bytes_read_total" in metrics
        # Crash-consistency health is on the scrape surface.
        assert "block_export_fsync_ops_total" in metrics
        assert "block_export_image_dirty" in metrics

        status, body = fetch(f"{url}/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        exp = doc["exports"]["base"]
        assert exp["open"] and not exp["dirty"]
        assert exp["errors"] == 0 and exp["last_error"] is None
        assert exp["connections"] == 1

        server.close()
        with pytest.raises(OSError):
            fetch(f"{url}/healthz")
        # The daemon thread pool must drain back to where we started.
        for _ in range(50):
            if threading.active_count() <= before:
                break
            threading.Event().wait(0.05)
        assert threading.active_count() <= before
        base.close()

    def test_healthz_degrades_on_closed_driver(self, registry,
                                               small_base):
        base = RawImage.open(small_base)
        server = BlockServer(telemetry_port=0)
        server.add_export("base", base)
        url = server.telemetry.url
        base.close()
        status, body = fetch(f"{url}/healthz")
        assert status == 503
        doc = json.loads(body)
        assert doc["status"] == "degraded"
        assert doc["exports"]["base"]["open"] is False
        server.close()
