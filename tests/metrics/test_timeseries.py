"""Ring-buffer time series: bounded history, reset-aware deltas."""

import pytest

from repro.metrics.timeseries import SeriesRing, SeriesStore


class TestSeriesRing:
    def test_append_and_points(self):
        ring = SeriesRing(capacity=4)
        assert len(ring) == 0
        assert ring.latest() is None
        for i in range(3):
            ring.append(float(i), float(i * 10))
        assert len(ring) == 3
        assert ring.points() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert ring.values(2) == [10.0, 20.0]
        assert ring.latest() == (2.0, 20.0)

    def test_overwrites_oldest_at_capacity(self):
        ring = SeriesRing(capacity=3)
        for i in range(7):
            ring.append(float(i), float(i))
        assert len(ring) == 3
        assert ring.values() == [4.0, 5.0, 6.0]

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match=">= 2"):
            SeriesRing(capacity=1)

    def test_delta_monotonic(self):
        ring = SeriesRing(capacity=8)
        for t, v in enumerate([10, 15, 15, 40]):
            ring.append(float(t), float(v))
        assert ring.delta() == 30.0
        assert ring.delta(2) == 25.0

    def test_delta_counter_reset(self):
        # 100 -> restart -> 5 -> 20: increase is 5 (post-reset) + 15,
        # never -80.
        ring = SeriesRing(capacity=8)
        for t, v in enumerate([80, 100, 5, 20]):
            ring.append(float(t), float(v))
        assert ring.delta() == 20.0 + 5.0 + 15.0

    def test_delta_needs_two_points(self):
        ring = SeriesRing(capacity=4)
        assert ring.delta() is None
        ring.append(0.0, 1.0)
        assert ring.delta() is None

    def test_rate(self):
        ring = SeriesRing(capacity=8)
        ring.append(0.0, 0.0)
        ring.append(4.0, 100.0)
        assert ring.rate() == 25.0

    def test_rate_zero_span(self):
        ring = SeriesRing(capacity=4)
        ring.append(1.0, 0.0)
        ring.append(1.0, 10.0)
        assert ring.rate() is None


class TestSeriesStore:
    def feed(self, store, t, samples):
        store.observe(t, samples)

    def test_keyed_by_name_and_labels(self):
        store = SeriesStore(capacity=4)
        self.feed(store, 0.0, [
            ("hits_total", {"export": "a"}, 1.0),
            ("hits_total", {"export": "b"}, 2.0),
            ("fill", {}, 0.5),
        ])
        assert len(store) == 3
        assert store.families() == ["fill", "hits_total"]
        assert store.ring("hits_total", export="a").latest() == (0.0, 1.0)
        assert store.ring("hits_total", export="zzz") is None
        assert len(store.rings("hits_total")) == 2

    def test_family_aggregates(self):
        store = SeriesStore(capacity=4)
        self.feed(store, 0.0, [("hits_total", {"export": "a"}, 10.0),
                               ("hits_total", {"export": "b"}, 1.0)])
        self.feed(store, 1.0, [("hits_total", {"export": "a"}, 30.0),
                               ("hits_total", {"export": "b"}, 4.0)])
        assert store.latest_sum("hits_total") == 34.0
        assert store.delta_sum("hits_total") == 23.0
        assert store.rate_sum("hits_total") == 23.0
        assert store.latest_sum("nope") is None
        assert store.delta_sum("nope") is None

    def test_first_present_preference_order(self):
        store = SeriesStore(capacity=4)
        self.feed(store, 0.0, [("sim_cache_hit_bytes_total", {}, 1.0)])
        prefs = ("block_export_cache_hit_bytes_total",
                 "sim_cache_hit_bytes_total")
        assert store.first_present(prefs) == "sim_cache_hit_bytes_total"
        assert store.first_present(("nope",)) is None
