"""The event/span bus: causality, clocks, schema, and the no-op path."""

import gc
import json
import sys

import pytest

from repro.metrics import tracing
from repro.metrics.tracing import (
    CLOCK_SIM,
    CLOCK_WALL,
    TRACER,
    JsonlSink,
    ListSink,
    Tracer,
    load_trace,
    validate_record,
    validate_trace,
)
from repro.units import KiB, MiB


@pytest.fixture(autouse=True)
def clean_tracer():
    """Tests share the global TRACER; always leave it disabled."""
    TRACER.disable()
    yield
    TRACER.disable()


class TestCausalIds:
    def test_nested_spans_share_trace_and_chain_parents(self):
        tracer = Tracer()
        sink = ListSink()
        tracer.enable(sink)
        with tracer.span("deploy") as outer:
            with tracer.span("boot") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = {r["name"]: r for r in sink.records}
        assert spans["deploy"]["parent_id"] is None
        assert spans["boot"]["parent_id"] == spans["deploy"]["span_id"]
        assert spans["boot"]["trace_id"] == spans["deploy"]["trace_id"]

    def test_ids_are_deterministic_counters(self):
        tracer = Tracer()
        tracer.enable(ListSink())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        records = tracer.disable().records
        assert [r["span_id"] for r in records] == ["s000001", "s000002"]
        assert [r["trace_id"] for r in records] == ["t0001", "t0002"]

    def test_event_attaches_to_enclosing_span(self):
        tracer = Tracer()
        sink = ListSink()
        tracer.enable(sink)
        with tracer.span("boot") as span:
            tracer.event("block.read", layer="base", length=4096)
        event = next(r for r in sink.records if r["type"] == "event")
        assert event["parent_id"] == span.span_id
        assert event["trace_id"] == span.trace_id
        assert event["attrs"]["layer"] == "base"

    def test_record_span_with_preallocated_ids(self):
        # The simulator's inversion: children parent onto a wave span
        # that is recorded after them.
        tracer = Tracer()
        sink = ListSink()
        tracer.enable(sink)
        trace_id, wave_id = tracer.allocate_ids()
        tracer.record_span("vm.boot", 0.0, 9.0, trace_id=trace_id,
                           parent_id=wave_id, vm_id="vm0")
        tracer.record_span("deploy.wave", 0.0, 9.5, trace_id=trace_id,
                           span_id=wave_id, vms=1)
        spans = {r["name"]: r for r in sink.records}
        assert spans["deploy.wave"]["span_id"] == wave_id
        assert spans["vm.boot"]["parent_id"] == wave_id
        assert spans["vm.boot"]["clock"] == CLOCK_SIM
        assert spans["vm.boot"]["start"] == 0.0
        assert spans["vm.boot"]["end"] == 9.0

    def test_wall_spans_carry_wall_clock(self):
        tracer = Tracer()
        sink = ListSink()
        tracer.enable(sink)
        with tracer.span("x"):
            pass
        assert sink.records[0]["clock"] == CLOCK_WALL
        assert sink.records[0]["end"] >= sink.records[0]["start"]


class TestDisabledPath:
    def test_disabled_span_yields_isolated_fresh_span(self):
        tracer = Tracer()
        seen = []
        for i in range(2):
            with tracer.span("warm", run=i) as span:
                span.attrs.update(extra=i)
                seen.append(span)
        assert seen[0] is not seen[1]
        assert seen[0].attrs == {"run": 0, "extra": 0}
        assert seen[1].attrs == {"run": 1, "extra": 1}

    def test_disabled_record_span_returns_empty_ids(self):
        tracer = Tracer()
        assert tracer.record_span("x", 0.0, 1.0) == ("", "")

    def test_qcow2_read_hot_path_allocates_nothing_when_disabled(
            self, tmp_path):
        # The ISSUE 3 regression gate: with tracing off, the per-read
        # instrumentation must be one attribute check — steady-state
        # reads may not grow the allocated-block count.
        from repro.imagefmt import RawImage, create_cache_chain

        size = 1 * MiB
        base_path = str(tmp_path / "base.raw")
        RawImage.create(base_path, size).close()
        chain = create_cache_chain(
            base_path, str(tmp_path / "cache.qcow2"),
            str(tmp_path / "cow.qcow2"), quota=2 * size)
        with chain:
            def read_loop(n):
                for i in range(n):
                    chain.read((i * 4 * KiB) % (size - 4 * KiB),
                               4 * KiB)

            read_loop(300)  # warm caches, allocate lazy structures
            gc.collect()
            before = sys.getallocatedblocks()
            read_loop(300)
            gc.collect()
            grown = sys.getallocatedblocks() - before
        assert grown < 50, (
            f"disabled tracing grew allocations by {grown} blocks "
            f"over 300 steady-state reads")


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        tracer.enable(JsonlSink(path))
        with tracer.span("boot", vm_id="vm1"):
            tracer.event("block.read", layer="base", offset=0,
                         length=512)
        tracer.disable()
        records = load_trace(path)
        assert validate_trace(records) == []
        assert [r["type"] for r in records] == ["event", "span"]
        assert records[1]["attrs"] == {"vm_id": "vm1"}

    def test_jsonl_truncates_previous_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as f:
            f.write("stale\n")
        JsonlSink(path).close()
        assert load_trace(path) == []

    def test_autoflush_bounds_the_buffer_at_span_close(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(tracing, "_AUTOFLUSH_RECORDS", 4)
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        sink = JsonlSink(path)
        tracer.enable(sink)
        with tracer.span("boot"):
            for _ in range(10):
                tracer.event("block.read", length=1)
        # The span close crossed the threshold -> records on disk
        # without an explicit flush.
        assert len(load_trace(path)) == 11
        assert sink._buffer == []
        tracer.disable()

    def test_load_trace_reports_bad_json_with_line(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as f:
            f.write('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace(path)


class TestSchema:
    def test_valid_records_pass(self):
        tracer = Tracer()
        sink = ListSink()
        tracer.enable(sink)
        with tracer.span("a"):
            tracer.event("e")
        tracer.record_span("s", 1.0, 2.0)
        assert validate_trace(sink.records) == []

    @pytest.mark.parametrize("rec, fragment", [
        ("text", "not an object"),
        ({"type": "bogus"}, "unknown record type"),
        ({"type": "event", "name": "e", "attrs": {}}, "missing field"),
        ({"type": "span", "name": "s", "trace_id": "t1",
          "span_id": "s1", "start": 0, "end": 1, "clock": "lunar",
          "attrs": {}}, "clock"),
        ({"type": "event", "name": "e", "ts": 0.0, "attrs": {},
          "surprise": 1}, "unexpected field"),
        ({"type": "event", "name": "", "ts": 0.0, "attrs": {}},
         "non-empty"),
    ])
    def test_invalid_records_are_rejected(self, rec, fragment):
        errors = validate_record(rec)
        assert errors and any(fragment in e for e in errors)

    def test_validate_trace_prefixes_index(self):
        errors = validate_trace([{"type": "event", "name": "e",
                                  "ts": 0.0, "attrs": {}},
                                 {"type": "nope"}])
        assert len(errors) == 1
        assert errors[0].startswith("record 1:")

    def test_schema_dict_matches_jsonschema_if_available(self):
        jsonschema = pytest.importorskip("jsonschema")
        tracer = Tracer()
        sink = ListSink()
        tracer.enable(sink)
        with tracer.span("boot", vm_id="v"):
            tracer.event("block.read", layer="base", length=512)
        tracer.record_span("sim", 0.0, 1.0, node="n1")
        validator = jsonschema.Draft7Validator(
            tracing.TRACE_RECORD_SCHEMA)
        for rec in json.loads(json.dumps(sink.records)):
            validator.validate(rec)
