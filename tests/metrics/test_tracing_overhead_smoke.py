"""Tier-1 smoke run of the tracing-overhead micro-benchmark.

Runs ``benchmarks/bench_ext_tracing._run_tracing_overhead`` at quick
scale so plain ``pytest`` guards the observability budget on every run.
The log is saved to a scratch dir only —
``benchmarks/results/BENCH_tracing_overhead.json`` is the committed
paper-scale record and stays untouched.
"""

import pytest

from benchmarks.bench_ext_tracing import _run_tracing_overhead

pytestmark = [pytest.mark.smoke, pytest.mark.timeout(90)]


def test_tracing_overhead_smoke(tmp_path):
    log = _run_tracing_overhead(quick=True)
    # Scratch dir, never benchmarks/results/: the committed artifact is
    # the paper-scale record and only the full benchmark may write it.
    log.save(str(tmp_path))

    assert log.scalars["events_per_round"] >= \
        2 * log.scalars["reads"]
    # Full scale demands <= 5%; the quick arms time ~1/3 of the reads
    # and tier-1 often runs on a loaded single-core box where scheduler
    # jitter alone swings short arms by several percent.  The smoke
    # guards shape (the bench runs, events flow, overhead is not wildly
    # off), not the budget — that is the full benchmark's job.
    assert log.scalars["overhead_pct"] <= 20.0
    # The v3 propagation round: quick mode rides real sockets with few
    # reads, so only sanity-bound it here (full benchmark holds 5%).
    assert log.scalars["remote_reads"] > 0
    assert log.scalars["propagation_overhead_pct"] <= 35.0
