"""Tier-1 smoke run of the tracing-overhead micro-benchmark.

Runs ``benchmarks/bench_ext_tracing._run_tracing_overhead`` at quick
scale so plain ``pytest`` guards the observability budget on every run,
and drops the same ``BENCH_tracing_overhead.json`` artifact the full
benchmark would.
"""

import pytest

from benchmarks.bench_ext_tracing import _run_tracing_overhead
from benchmarks.conftest import RESULTS_DIR

pytestmark = [pytest.mark.smoke, pytest.mark.timeout(90)]


def test_tracing_overhead_smoke():
    log = _run_tracing_overhead(quick=True)
    log.save(RESULTS_DIR)

    assert log.scalars["events_per_round"] >= \
        2 * log.scalars["reads"]
    # Full scale demands <= 5%; the quick arms time ~1/3 of the reads,
    # so fixed jitter weighs more and the smoke ceiling is looser.
    assert log.scalars["overhead_pct"] <= 10.0
