"""Quick-scale run of the connection-count sweep, wired into tier-1.

The full sweep (``pytest benchmarks/bench_ext_remote.py -k c10k``)
climbs to 256 clients; this smoke keeps the 1 -> 32 prefix so every
tier-1 run still proves the event loop beats the threaded baseline
and copies nothing, in a few seconds.
"""

import pytest

from benchmarks.bench_ext_remote import _run_c10k, check_c10k_shape

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.timeout(120),
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]


def test_c10k_smoke(tmp_path):
    log = _run_c10k(quick=True)
    # Scratch dir, never benchmarks/results/: the committed artifact is
    # the paper-scale record and only the full benchmark may write it.
    log.save(str(tmp_path))
    check_c10k_shape(log)
    assert log.scalars["eventloop_copies_per_read"] == 0.0
