"""Quick-scale run of the connection-count sweep, wired into tier-1.

The full sweep (``pytest benchmarks/bench_ext_remote.py -k c10k``)
climbs to 256 clients; this smoke keeps the 1 -> 32 prefix so every
tier-1 run still proves the event loop beats the threaded baseline
and copies nothing, in a few seconds.
"""

import pytest

from benchmarks.bench_ext_remote import _run_c10k, check_c10k_shape
from benchmarks.conftest import RESULTS_DIR

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.timeout(120),
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]


def test_c10k_smoke():
    log = _run_c10k(quick=True)
    log.save(RESULTS_DIR)
    check_c10k_shape(log)
    assert log.scalars["eventloop_copies_per_read"] == 0.0
