"""Wire protocol v4: negotiated per-chunk compression.

The full negotiation matrix — a v4 client against {v1, v2, v3, v4}
servers and pinned old clients against a v4 server — plus the payload
contract: compressible chunks shrink on the wire, incompressible and
small chunks ship raw, errors never compress, corruption surfaces as
a clean :class:`ProtocolError`, and a mid-window reconnect keeps the
negotiated compression.  Runs against the event-loop engine here and
is re-collected against the threaded engine by
``test_compression_threaded_engine.py``.
"""

import os

import pytest

from repro.imagefmt.raw import RawImage
from repro.remote import BlockServer, RemoteImage
from repro.remote import protocol as wire
from repro.remote.fault import FaultInjector
from repro.units import KiB, MiB

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

FAST_RETRY = dict(max_retries=3, backoff_base=0.01, backoff_max=0.05)

#: Highly compressible position-dependent content (structured text,
#: unlike conftest.pattern whose mixed bits do not deflate).
def text_pattern(offset: int, length: int) -> bytes:
    blob = b"".join(b"%016d" % i for i in
                    range(offset // 16, (offset + length) // 16 + 2))
    return blob[offset % 16: offset % 16 + length]


@pytest.fixture
def zip_base(tmp_path):
    """A 2 MiB raw base full of compressible content."""
    path = str(tmp_path / "zip-base.raw")
    img = RawImage.create(path, 2 * MiB)
    img.write(0, text_pattern(0, 2 * MiB))
    img.close()
    return path


class TestNegotiationMatrix:
    @pytest.mark.parametrize("server_max,expect", [
        (1, wire.VERSION_1), (2, wire.VERSION_2),
        (3, wire.VERSION_3), (4, wire.VERSION_4),
        (5, wire.VERSION_5)])
    def test_v4_client_against_every_server(self, zip_base,
                                            server_max, expect):
        """compress=True clamps transparently: only a v4+ server
        grants it, old servers serve the clamped version
        uncompressed."""
        base = RawImage.open(zip_base)
        with BlockServer(max_protocol=server_max) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     compress=True) as img:
                assert img.protocol_version == expect
                assert img.compression_enabled == (expect
                                                   >= wire.VERSION_4)
                assert img.read(0, 64 * KiB) == text_pattern(0, 64 * KiB)
                stats = img.transport_stats
                if expect >= wire.VERSION_4:
                    assert stats.wire_compressed_bytes > 0
                    assert stats.wire_compressed_bytes_raw \
                        > stats.wire_compressed_bytes
                    assert 0 < stats.compression_ratio < 1
                else:
                    assert stats.wire_compressed_bytes == 0
                    assert stats.compression_ratio == 1.0
        base.close()

    @pytest.mark.parametrize("pin", [1, 2, 3, 4, 5])
    def test_pinned_clients_against_v4_server(self, zip_base, pin):
        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     protocol=pin) as img:
                assert img.protocol_version == pin
                assert not img.compression_enabled
                assert img.read(0, 32 * KiB) == text_pattern(0, 32 * KiB)
                assert img.transport_stats.wire_compressed_bytes == 0
        base.close()

    def test_pinned_v4_against_v3_server_raises(self, zip_base):
        from repro.errors import RemoteError

        base = RawImage.open(zip_base)
        with BlockServer(max_protocol=3) as server:
            server.add_export("base", base)
            with pytest.raises((wire.ProtocolError, RemoteError)):
                RemoteImage.connect(server.url("base"), protocol=4,
                                    **FAST_RETRY)
        base.close()

    def test_compress_with_old_pin_rejected_client_side(self, zip_base):
        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            for pin in (1, 2, 3):
                with pytest.raises(ValueError, match="compression"):
                    RemoteImage.connect(server.url("base"),
                                        protocol=pin, compress=True)
        base.close()

    def test_invalid_compress_levels_rejected(self, zip_base):
        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            for bad in (10, -1):
                with pytest.raises(ValueError):
                    RemoteImage.connect(server.url("base"),
                                        compress=bad)
        base.close()

    def test_server_refuses_compression(self, zip_base):
        """On/off asymmetry, server side: a willing client against
        ``BlockServer(compression=False)`` still negotiates the top
        version but no frame is ever compressed."""
        base = RawImage.open(zip_base)
        with BlockServer(compression=False) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     compress=True) as img:
                assert img.protocol_version == wire.MAX_VERSION
                assert not img.compression_enabled
                assert img.read(0, 64 * KiB) == text_pattern(0, 64 * KiB)
                assert img.transport_stats.wire_compressed_bytes == 0
            assert server.health()["compression"] is False
        base.close()

    def test_client_defaults_to_uncompressed(self, zip_base):
        """On/off asymmetry, client side: a willing server never
        compresses for a client that did not ask."""
        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.MAX_VERSION
                assert not img.compression_enabled
                assert img.read(0, 64 * KiB) == text_pattern(0, 64 * KiB)
                assert img.transport_stats.wire_compressed_bytes == 0
            assert server.export_stats("base").wire_compressed_bytes == 0
        base.close()

    def test_image_info_reports_compression(self, zip_base):
        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     compress=True) as img:
                assert img.image_info()["compression"] is True
            with RemoteImage.connect(server.url("base")) as img:
                assert img.image_info()["compression"] is False
        base.close()


class TestCompressedDatapath:
    def test_reads_compress_and_account(self, zip_base):
        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     compress=True) as img:
                blob = img.read(0, MiB)
                assert blob == text_pattern(0, MiB)
                stats = img.transport_stats
                # Wire accounting counts compressed (wire) bytes, so
                # received stays far below the logical megabyte.
                assert stats.wire_compressed_bytes_raw >= MiB
                assert stats.bytes_received < MiB // 2
            estats = server.export_stats("base")
            assert estats.wire_compressed_bytes > 0
            assert estats.wire_compressed_bytes_raw \
                > estats.wire_compressed_bytes
            assert 0 < estats.compression_ratio < 1
        base.close()

    def test_writes_compress_toward_server(self, tmp_path):
        path = str(tmp_path / "rw.raw")
        RawImage.create(path, MiB).close()
        img = RawImage.open(path, read_only=False)
        with BlockServer() as server:
            server.add_export("rw", img, writable=True)
            with RemoteImage.connect(server.url("rw"), compress=True,
                                     read_only=False) as remote:
                payload = text_pattern(0, 256 * KiB)
                remote.write(0, payload)
                assert remote.read(0, 256 * KiB) == payload
                stats = remote.transport_stats
                assert stats.wire_compressed_bytes > 0
                # The write went out compressed: sent wire bytes stay
                # well under the logical payload.
                assert stats.bytes_sent < 128 * KiB
            estats = server.export_stats("rw")
            assert estats.wire_compressed_bytes_raw > 0
        img.close()

    def test_incompressible_chunks_ship_raw(self, tmp_path):
        path = str(tmp_path / "rand.raw")
        blob = os.urandom(MiB)
        img = RawImage.create(path, MiB)
        img.write(0, blob)
        img.close()
        base = RawImage.open(path)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     compress=True) as img:
                assert img.read(0, 256 * KiB) == blob[:256 * KiB]
                # Random bytes do not deflate: every chunk shipped raw,
                # and the grant alone must not cost anything.
                assert img.transport_stats.wire_compressed_bytes == 0
        base.close()

    def test_small_chunks_stay_raw(self, zip_base):
        base = RawImage.open(zip_base)
        with BlockServer(compress_min_size=64 * KiB) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     compress=True) as img:
                assert img.read(0, 4 * KiB) == text_pattern(0, 4 * KiB)
                assert img.transport_stats.wire_compressed_bytes == 0
                blob = img.read(0, 128 * KiB)
                assert blob == text_pattern(0, 128 * KiB)
                assert img.transport_stats.wire_compressed_bytes > 0
        base.close()

    def test_reconnect_mid_window_keeps_compression(self, zip_base):
        fi = FaultInjector()
        base = RawImage.open(zip_base)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), compress=True,
                                     depth=4, **FAST_RETRY) as img:
                assert img.compression_enabled
                assert img.read(0, 64 * KiB) \
                    == text_pattern(0, 64 * KiB)
                before = img.transport_stats.wire_compressed_bytes
                assert before > 0
                fi.inject("drop")
                assert img.read(64 * KiB, 64 * KiB) \
                    == text_pattern(64 * KiB, 64 * KiB)
                assert img.transport_stats.reconnects == 1
                # The grant was renegotiated on reconnect, not lost.
                assert img.compression_enabled
                assert img.read(128 * KiB, 64 * KiB) \
                    == text_pattern(128 * KiB, 64 * KiB)
                assert img.transport_stats.wire_compressed_bytes > before
        base.close()

    def test_errors_never_compressed(self, zip_base):
        """A server-side error answer ships its message raw; the
        connection (and its compression grant) stays usable after."""
        fi = FaultInjector()
        base = RawImage.open(zip_base)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), compress=True,
                                     **FAST_RETRY) as img:
                fi.inject("error")
                with pytest.raises(wire.RemoteOpError, match="injected"):
                    img.read(0, 4 * KiB)
                assert img.compression_enabled
                assert img.read(0, 64 * KiB) == text_pattern(0, 64 * KiB)
                assert img.transport_stats.wire_compressed_bytes > 0
        base.close()


class TestPayloadContract:
    def test_roundtrip(self):
        blob = text_pattern(0, 100 * KiB)
        packed, flag = wire.compress_payload(blob)
        assert flag and len(packed) < len(blob)
        assert wire.decompress_payload(packed) == blob

    def test_non_shrinking_ships_raw(self):
        blob = os.urandom(64 * KiB)
        packed, flag = wire.compress_payload(blob)
        assert not flag and packed is blob

    def test_below_min_size_ships_raw(self):
        blob = text_pattern(0, 256)
        packed, flag = wire.compress_payload(blob, min_size=512)
        assert not flag and packed is blob

    def test_corrupt_payload_is_protocol_error(self):
        with pytest.raises(wire.ProtocolError, match="corrupt"):
            wire.decompress_payload(b"\x13\x37not zlib at all")

    def test_truncated_payload_is_protocol_error(self):
        import zlib

        good = zlib.compress(text_pattern(0, 32 * KiB))
        with pytest.raises(wire.ProtocolError, match="corrupt|truncat"):
            wire.decompress_payload(good[:-4])

    def test_bomb_clamped_to_max_payload(self):
        import zlib

        bomb = zlib.compress(b"\0" * (2 * MiB))
        with pytest.raises(wire.ProtocolError):
            wire.decompress_payload(bomb, expected_max=MiB)

    def test_corrupt_wire_payload_surfaces_cleanly(self, zip_base):
        """A flipped bit inside a compressed frame must fail the
        request as a protocol error / remote error, not hang or crash
        the reader."""
        import socket

        base = RawImage.open(zip_base)
        with BlockServer() as server:
            server.add_export("base", base)
            host, port = server.host, server.port

            # A minimal raw v4 client that garbles what it receives:
            # handshake for v4+compression, send one read, then corrupt
            # the compressed payload before inflating.
            sock = socket.create_connection((host, port))
            try:
                sock.settimeout(10)
                wire.send_handshake_request_v2(
                    sock, "base", version=wire.VERSION_4, compress=True)
                version, _size, granted = wire.recv_handshake_response_ex(
                    sock, max_version=wire.VERSION_4)
                assert version == wire.VERSION_4 and granted
                wire.send_request_v3(sock, 1, wire.Request(
                    wire.REQ_READ, 0, 64 * KiB, b""))
                hdr = wire.recv_exact(sock,
                                      wire.RESPONSE2_HEADER_SIZE)
                status, _tag, length = \
                    wire.decode_response_v2_header(hdr)
                payload = bytearray(wire.recv_exact(sock, length))
                assert status & wire.FLAG_COMPRESSED
                payload[len(payload) // 2] ^= 0xFF
                with pytest.raises(wire.ProtocolError):
                    wire.decompress_payload(bytes(payload))
            finally:
                sock.close()
        base.close()
