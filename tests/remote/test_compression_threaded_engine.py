"""The v4 compression matrix against the threaded engine.

``test_compression.py`` exercises the negotiation matrix and the
compressed datapath on the default event-loop engine; this module
re-collects the same classes with ``REPRO_SERVER_ENGINE=threaded``
pinned so the legacy A/B engine honours the identical v4 contract —
grants, clamping, per-direction compression, reconnect persistence,
and corruption handling.  (``TestPayloadContract`` is pure protocol
code with no server in the loop, so it is not re-run.)
"""

import pytest

from tests.remote.test_compression import (  # noqa: F401  (re-collected)
    TestCompressedDatapath,
    TestNegotiationMatrix,
    zip_base,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(autouse=True)
def _threaded_engine(monkeypatch):
    """Every BlockServer in this module runs the legacy engine."""
    monkeypatch.setenv("REPRO_SERVER_ENGINE", "threaded")
