"""Regression tests for the ISSUE 6 remote-datapath concurrency fixes.

Each test is a deterministic reproduction of one of the four latent
bugs fixed alongside the event-loop rearchitecture:

1. fault-injector TOCTOU — the serving side consulted the injector for
   an action, then dereferenced ``self._fault.delay_seconds`` later,
   from a worker, after a concurrent ``set_fault_injector(None)`` had
   already detached it (AttributeError; the request died unanswered);
2. ``/healthz`` scraping ``self._exports`` unlocked while
   ``add_export`` mutated it, and calling ``driver.image_info()``
   without tolerating a driver that closes mid-scrape;
3. ``ExportStats.summary()`` reading counters without the stats lock,
   producing torn snapshots (``read_ops`` from before a request paired
   with ``bytes_read`` from after it);
4. the pipelined client restarting the full op deadline every time the
   window head changed, so a stalled request sent ``depth`` positions
   back waited ~``depth x op_timeout``.

The heavier, nondeterministic stress versions of these live in
``test_remote_stress.py`` behind ``REPRO_REMOTE_STRESS=1``.
"""

import threading
import time

import pytest

from repro.imagefmt.driver import BlockDriver
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.remote.fault import ACTION_DELAY
from repro.remote.server import ExportStats
from repro.units import KiB, MiB

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

FAST_RETRY = dict(max_retries=2, backoff_base=0.01, backoff_max=0.05)

ENGINES = [pytest.param(False, id="eventloop"),
           pytest.param(True, id="threaded")]


class _FlatReads(BlockDriver):
    """Constant-content reads, no delays: the minimal export."""

    format_name = "flat"

    def __init__(self, size: int = MiB) -> None:
        super().__init__("<flat>", size, True)

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        return b"\x2e" * length

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


# -- fix 1: fault-injector TOCTOU -------------------------------------------


class _SelfDetachingInjector(FaultInjector):
    """Detaches itself from the server inside ``next_action()``.

    This is the TOCTOU race compressed to a deterministic point: the
    serving side has just chosen ``delay`` from this injector, and by
    the time it goes to sleep ``server._fault`` is already None.  The
    unfixed worker then died on ``None.delay_seconds`` and the request
    was never answered (surfacing as a client timeout + retry)."""

    def __init__(self, server: BlockServer) -> None:
        super().__init__(delay_seconds=0.02)
        self._server = server

    def next_action(self) -> str:
        self._server.set_fault_injector(None)
        self.stats.delayed += 1
        return ACTION_DELAY


class TestInjectorSwapRace:
    @pytest.mark.parametrize("threaded", ENGINES)
    def test_detach_between_action_and_delay(self, threaded):
        """The delay must come from the injector that chose the action,
        even if the server's injector slot is cleared concurrently."""
        driver = _FlatReads()
        with BlockServer(threaded=threaded) as server:
            server.add_export("flat", driver)
            server.set_fault_injector(_SelfDetachingInjector(server))
            with RemoteImage.connect(server.url("flat"),
                                     op_timeout=2.0,
                                     **FAST_RETRY) as img:
                data = img.read(0, 4 * KiB)
            assert data == b"\x2e" * 4 * KiB
            # The unfixed server never answers the delayed request: the
            # client only recovers via timeout + reconnect, which these
            # counters would show.
            assert img.transport_stats.timeouts == 0
            assert img.transport_stats.retries == 0
            assert server.export_stats("flat").errors == 0


# -- fix 2: /healthz scrape races -------------------------------------------


class _HookedInfoDriver(BlockDriver):
    """Runs an arbitrary hook (once) inside ``image_info()`` — lets a
    test interleave at the exact point health() consults the driver."""

    format_name = "hooked"

    def __init__(self, size: int = MiB) -> None:
        super().__init__("<hooked>", size, True)
        self.on_info = None

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def image_info(self) -> dict:
        hook, self.on_info = self.on_info, None
        if hook is not None:
            hook()
        return super().image_info()

    def _read_impl(self, offset: int, length: int) -> bytes:
        return b"\x00" * length

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


class _VanishingInfoDriver(_HookedInfoDriver):
    """``image_info()`` always fails — a driver closing between the
    ``closed`` check and the info call, compressed to a certainty."""

    def image_info(self) -> dict:
        raise OSError("backing store vanished mid-scrape")


class TestHealthScrapeRaces:
    def test_add_export_during_scrape(self):
        """health() must iterate a snapshot: an export registered while
        the scrape walks the dict (as the telemetry thread and a
        provisioning thread genuinely interleave) used to raise
        ``RuntimeError: dictionary changed size during iteration``."""
        driver = _HookedInfoDriver()
        with BlockServer() as server:
            server.add_export("a", driver)
            driver.on_info = lambda: server.add_export(
                "late", _FlatReads())
            payload = server.health()  # must not raise
            assert "a" in payload["exports"]
            # The export added mid-scrape shows up on the next one.
            assert "late" in server.health()["exports"]

    def test_driver_failing_mid_scrape_degrades(self):
        """A driver erroring under health() marks the export down
        instead of blowing up the telemetry thread."""
        with BlockServer() as server:
            server.add_export("doomed", _VanishingInfoDriver())
            payload = server.health()  # must not raise
            entry = payload["exports"]["doomed"]
            assert entry["open"] is False
            assert payload["status"] == "degraded"

    def test_health_reports_engine(self):
        with BlockServer() as server:
            assert server.health()["engine"] == "eventloop"
        with BlockServer(threaded=True) as server:
            assert server.health()["engine"] == "threaded"


# -- fix 3: torn ExportStats snapshots --------------------------------------


class TestSummaryAtomicity:
    def test_summary_respects_stats_lock(self):
        """A snapshot taken while a request is mid-accounting must not
        tear: it waits for the lock and sees both counters or neither.

        The writer below holds the lock across the read_ops/bytes_read
        pair exactly as the dispatch path does; the unfixed summary()
        read between the two increments."""
        stats = ExportStats()

        def request_accounting():
            with stats.lock:
                stats.read_ops += 1
                time.sleep(0.15)
                stats.bytes_read += 4 * KiB

        t = threading.Thread(target=request_accounting)
        t.start()
        time.sleep(0.05)  # land inside the critical section
        snap = stats.summary()
        t.join(timeout=5)
        assert snap["bytes_read"] == snap["read_ops"] * 4 * KiB

    def test_reconciliation_invariant_under_traffic(self):
        """summary() snapshots taken while clients hammer the export
        must always reconcile byte-for-byte (every read is 4 KiB)."""
        driver = _FlatReads()
        stop = threading.Event()
        failures: list[Exception] = []

        def reader(url: str):
            try:
                with RemoteImage.connect(url) as img:
                    while not stop.is_set():
                        img.read(0, 4 * KiB)
            except Exception as exc:  # pragma: no cover - fail loudly
                failures.append(exc)

        with BlockServer() as server:
            server.add_export("flat", driver)
            threads = [threading.Thread(target=reader,
                                        args=(server.url("flat"),))
                       for _ in range(2)]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 0.5
            stats = server.export_stats("flat")
            while time.monotonic() < deadline:
                snap = stats.summary()
                assert snap["bytes_read"] == snap["read_ops"] * 4 * KiB
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not failures


# -- fix 4: pipelined deadline measured from send time -----------------------


class _StaggerReads(BlockDriver):
    """Per-offset read latencies, with one offset stalling once.

    Offsets 0..4 complete at 0.1 s, 0.2 s, ..., 0.5 s; the final
    offset stalls 1.6 s on its first read and is instant on replay.
    The head of the client's window therefore keeps completing right
    up to the moment the stalled request becomes head — the exact
    shape that let the unfixed client restart its deadline five
    times."""

    format_name = "stagger"

    def __init__(self, chunk: int, stall_offset: int,
                 size: int = MiB) -> None:
        super().__init__("<stagger>", size, True)
        self._chunk = chunk
        self._stall_offset = stall_offset
        self._stalled_once = threading.Event()

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        if offset == self._stall_offset:
            if not self._stalled_once.is_set():
                self._stalled_once.set()
                time.sleep(1.6)
        else:
            time.sleep(0.1 * (offset // self._chunk + 1))
        return b"\x2e" * length

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


class TestPipelinedDeadline:
    def test_deadline_counts_from_send_not_head_change(self):
        """A stalled request deep in the window times out one
        ``op_timeout`` after it was *sent*, not after it became head.

        Six chunks go out together (depth 6).  Chunks 1-5 drain the
        head at 0.1 s intervals; chunk 6 stalls.  Fixed client: times
        out at ~0.7 s from send, replays, finishes ~0.8 s.  Unfixed
        client: starts a fresh 0.7 s wait when chunk 6 becomes head at
        ~0.5 s and finishes past ~1.2 s — over this test's ceiling."""
        chunk = 64 * KiB
        driver = _StaggerReads(chunk, stall_offset=5 * chunk)
        with BlockServer() as server:
            server.add_export("stagger", driver)
            with RemoteImage.connect(server.url("stagger"),
                                     op_timeout=0.7, depth=6,
                                     chunk_size=chunk,
                                     **FAST_RETRY) as img:
                started = time.monotonic()
                data = img.read(0, 6 * chunk)
                elapsed = time.monotonic() - started
            assert data == b"\x2e" * 6 * chunk
            assert img.transport_stats.timeouts == 1
            assert img.transport_stats.retries == 1
            assert elapsed < 1.05, (
                f"stalled head took {elapsed:.2f}s to time out — "
                f"deadline drifted past op_timeout")
