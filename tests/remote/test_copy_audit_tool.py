"""tools/copy_audit.py: the copy-overhead audit CLI.

Runs the tool as a subprocess (exactly as CI would) and asserts the
exit-code contract: 0 when the event-loop engine's server-side copy
ratio is within budget, 1 when an impossible budget is demanded, plus
the JSON report's shape.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
TOOL = os.path.join(ROOT, "tools", "copy_audit.py")


def run_tool(*args: str) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, TOOL, *args],
        capture_output=True, text=True, timeout=120)
    return proc.returncode, proc.stdout


@pytest.mark.timeout(150)
def test_audit_passes_and_reports_both_engines():
    code, out = run_tool("--json", "--size-mib", "1")
    assert code == 0
    audit = json.loads(out)
    assert audit["ok"] is True
    engines = {r["engine"]: r for r in audit["engines"]}
    assert set(engines) == {"eventloop", "threaded"}
    assert engines["eventloop"]["server_copy_ratio"] <= audit["budget"]
    # The threaded engine copies roughly every payload byte; the gap
    # is the point of the audit.
    assert engines["threaded"]["server_copy_ratio"] > 0.5
    for r in engines.values():
        assert r["read_ops"] > 0 and r["write_ops"] > 0
        assert r["wire_bytes"] > 0


@pytest.mark.timeout(150)
def test_budget_zero_and_usage_errors():
    # The event loop genuinely copies nothing, so even a zero budget
    # passes -- the strongest form of the zero-copy claim.
    code, _ = run_tool("--size-mib", "1", "--budget", "0")
    assert code == 0
    # Nonsense arguments are usage errors (2), not audit failures (1).
    code, _ = run_tool("--size-mib", "0")
    assert code == 2
