"""Event-loop engine specifics: selection, zero-copy accounting,
write-path buffer lifecycle, thread hygiene, and many-connection
behaviour.

The wire *contract* (negotiation, out-of-order completion, recovery,
tracing) is covered by the existing remote suite, which runs against
the event loop by default, and re-run against the threaded engine by
``test_pipeline_threaded_engine.py``.  This module tests what is new
or different about the event loop itself.
"""

import threading
import time

import pytest

from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.remote import BlockServer, RemoteImage
from repro.units import KiB, MiB

from tests.conftest import pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _server_threads(server: BlockServer) -> list[threading.Thread]:
    prefix = f"blockserver-{server.port}"
    return [t for t in threading.enumerate()
            if t.name.startswith(prefix) and t.is_alive()]


class TestEngineSelection:
    def test_default_is_eventloop(self):
        with BlockServer() as server:
            assert server.engine == "eventloop"

    def test_threaded_flag_keeps_legacy_engine(self):
        with BlockServer(threaded=True) as server:
            assert server.engine == "threaded"
            names = {t.name for t in _server_threads(server)}
            assert f"blockserver-{server.port}-accept" in names

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_ENGINE", "threaded")
        with BlockServer() as server:
            assert server.engine == "threaded"
        monkeypatch.setenv("REPRO_SERVER_ENGINE", "eventloop")
        with BlockServer() as server:
            assert server.engine == "eventloop"
        # An explicit argument beats the environment.
        monkeypatch.setenv("REPRO_SERVER_ENGINE", "threaded")
        with BlockServer(threaded=False) as server:
            assert server.engine == "eventloop"

    def test_close_leaves_no_engine_threads(self, small_base):
        base = RawImage.open(small_base)
        server = BlockServer(workers=4)
        server.add_export("base", base)
        with RemoteImage.connect(server.url("base")) as img:
            img.read(0, 64 * KiB)
        assert _server_threads(server)  # loop + pool while serving
        server.close()
        assert _server_threads(server) == []
        base.close()


class TestZeroCopyAccounting:
    def test_eventloop_read_path_copies_nothing(self, small_base):
        """Same traffic, both engines: the event loop's recv_into +
        sendmsg datapath accounts zero payload copies, the threaded
        engine's join/concat framing accounts every byte at least
        once.  This counter pair is the PR's measurable claim."""
        copied = {}
        wire_bytes = {}
        for threaded in (False, True):
            base = RawImage.open(small_base)
            with BlockServer(threaded=threaded) as server:
                server.add_export("base", base)
                with RemoteImage.connect(server.url("base"),
                                         chunk_size=64 * KiB) as img:
                    data = img.read(0, 512 * KiB)
                assert data == pattern(0, 512 * KiB)
                snap = server.export_stats("base").summary()
                copied[server.engine] = snap["bytes_copied"]
                wire_bytes[server.engine] = (
                    snap["wire_bytes_sent"],
                    snap["wire_bytes_received"])
            base.close()
        assert copied["eventloop"] == 0
        assert copied["threaded"] >= 512 * KiB
        # Different engines, identical wire traffic.
        assert wire_bytes["eventloop"] == wire_bytes["threaded"]

    def test_client_counts_reassembly_copies(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     chunk_size=64 * KiB) as img:
                img.read(0, 64 * KiB)  # single chunk: returned as-is
                assert img.transport_stats.bytes_copied == 0
                img.read(0, 256 * KiB)  # 4 chunks: one reassembly join
                assert img.transport_stats.bytes_copied == 256 * KiB
        base.close()


class TestWritePathBufferLifecycle:
    def test_writes_through_eventloop_reach_qcow2(self, tmp_path):
        """Write payloads travel as memoryviews over the recv buffer;
        the qcow2 allocator slices them across cluster boundaries, so
        this exercises the no-copy buffer against the most demanding
        consumer — then proves durability by reopening the file."""
        p = str(tmp_path / "disk.qcow2")
        Qcow2Image.create(p, size=4 * MiB).close()
        with BlockServer() as server:
            server.add_export_path("disk", p, writable=True)
            with RemoteImage.connect(server.url("disk"),
                                     read_only=False,
                                     chunk_size=64 * KiB) as img:
                # Straddles cluster boundaries and chunk boundaries.
                blob = pattern(0, 192 * KiB + 513)
                img.write(100, blob)
                img.flush()
                assert img.read(100, len(blob)) == blob
            server.close()
        with Qcow2Image.open(p) as disk:
            assert disk.read(100, len(blob)) == blob

    def test_pipelined_writes_use_distinct_buffers(self, tmp_path):
        """Under pipelining several write payloads are in flight at
        once; each must own its buffer (a reused recv buffer would
        interleave payloads)."""
        p = str(tmp_path / "disk.raw")
        RawImage.create(p, 2 * MiB).close()
        with BlockServer() as server:
            server.add_export_path("disk", p, writable=True)
            with RemoteImage.connect(server.url("disk"),
                                     read_only=False, depth=8,
                                     chunk_size=16 * KiB) as img:
                blob = pattern(0, 512 * KiB)  # 32 pipelined chunks
                img.write(0, blob)
                img.flush()
                assert img.read(0, len(blob)) == blob


class TestManyConnections:
    def test_fifty_concurrent_clients(self, small_base):
        """Way past the threaded engine's comfort zone for one CI box,
        trivial for the loop: 50 concurrent lock-step-ish clients all
        finish and every byte checks out."""
        n = 50
        results: list[bytes] = []
        failures: list[Exception] = []

        def client(url: str, i: int):
            try:
                offset = (i % 16) * 64 * KiB
                with RemoteImage.connect(url) as img:
                    results.append(img.read(offset, 4 * KiB)
                                   == pattern(offset, 4 * KiB))
            except Exception as exc:  # pragma: no cover - fail loudly
                failures.append(exc)

        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            threads = [threading.Thread(target=client,
                                        args=(server.url("base"), i))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            snap = server.export_stats("base").summary()
        base.close()
        assert not failures
        assert results == [True] * n
        assert snap["connections"] == n
        assert snap["read_ops"] == n
        assert snap["bytes_copied"] == 0

    def test_slow_reader_does_not_stall_the_loop(self, small_base):
        """A client that dawdles mid-window must not block service to
        others: the loop parks its partially-sent response and keeps
        serving the fast client."""
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            # The slow client asks for a large response and doesn't
            # read it — the server's send fills the socket buffer and
            # must park, not spin or stall.
            import socket as socketmod

            from repro.remote import protocol as wire
            slow = socketmod.create_connection((server.host,
                                                server.port))
            slow.settimeout(10)
            wire.send_handshake_request_v2(slow, "base")
            wire.recv_handshake_response_v2(slow)
            wire.send_request_v2(slow, 7, wire.Request(
                wire.REQ_READ, 0, 2 * MiB, b""))
            time.sleep(0.1)  # let the response wedge in the buffers
            t0 = time.monotonic()
            with RemoteImage.connect(server.url("base")) as img:
                data = img.read(0, 4 * KiB)
            fast_elapsed = time.monotonic() - t0
            assert data == pattern(0, 4 * KiB)
            assert fast_elapsed < 5.0
            # The parked response is still intact and deliverable.
            tag, payload, err = wire.recv_response_v2(slow)
            assert (tag, err) == (7, None)
            assert payload == pattern(0, 2 * MiB)
            slow.close()
        base.close()
