"""BlockServer.add_export_path: crash-safe (re)export of image files.

The path-based export is what a storage node uses after a restart: the
open runs dirty-bit recovery, ``verify=True`` refuses corrupt images,
and the server owns (and closes) the driver.
"""

from __future__ import annotations

import pytest

from repro.errors import CorruptImageError
from repro.imagefmt import constants as C
from repro.imagefmt.qcow2 import Qcow2Image
from repro.remote import BlockServer, RemoteImage
from repro.units import KiB, MiB

from tests.conftest import make_patterned_base, pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

CLUSTER = 512


@pytest.fixture
def warm_cache(tmp_path):
    base = make_patterned_base(tmp_path / "base.raw", size=128 * KiB)
    p = str(tmp_path / "cache.qcow2")
    Qcow2Image.create(p, backing_file=base, cluster_size=CLUSTER,
                      cache_quota=MiB).close()
    with Qcow2Image.open(p, read_only=False) as img:
        img.read(0, 32 * KiB)
    return p


def set_dirty_bit(path: str) -> None:
    header = Qcow2Image.peek_header(path)
    header.incompatible_features |= C.FEATURE_DIRTY
    with open(path, "r+b") as f:
        f.write(header.encode())


class TestAddExportPath:
    def test_serves_reads_end_to_end(self, warm_cache):
        with BlockServer() as server:
            server.add_export_path("cache", warm_cache)
            with RemoteImage.connect(server.url("cache")) as img:
                assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)

    def test_owned_driver_closed_on_server_close(self, warm_cache):
        server = BlockServer()
        driver = server.add_export_path("cache", warm_cache)
        assert not driver.closed
        server.close()
        assert driver.closed

    def test_writable_export_recovers_dirty_image(self, warm_cache):
        set_dirty_bit(warm_cache)
        with BlockServer() as server:
            driver = server.add_export_path("cache", warm_cache,
                                            writable=True)
            # Recovery ran at open and was persisted before serving.
            assert driver.last_recovery is not None
            assert driver.last_recovery.persisted
            with RemoteImage.connect(server.url("cache")) as img:
                assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)
        assert not Qcow2Image.peek_header(warm_cache).is_dirty

    def test_read_only_export_of_dirty_image_serves(self, warm_cache):
        """A read-only node can serve a dirty image: recovery happens
        in memory, and the surviving on-disk bit is not a refusal."""
        set_dirty_bit(warm_cache)
        with BlockServer() as server:
            driver = server.add_export_path("cache", warm_cache)
            assert driver.last_recovery is not None
            assert not driver.last_recovery.persisted
            with RemoteImage.connect(server.url("cache")) as img:
                assert img.read(0, 32 * KiB) == pattern(0, 32 * KiB)
        # Read-only: the bit stays for the next writable open.
        assert Qcow2Image.peek_header(warm_cache).is_dirty

    def test_corrupt_image_refused(self, warm_cache):
        # Zero the refcount of a mapped data cluster: real corruption
        # that recovery-at-open does not see (the bit is not set).
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            data_off = next(
                e & C.L2E_OFFSET_MASK
                for e in img._load_l2(0) if e)
            img._alloc.set_refcount(data_off // CLUSTER, 0)
            img._alloc.flush_refcounts()
            img.closed = True
            img._f.close()
        with BlockServer() as server:
            with pytest.raises(CorruptImageError,
                               match="refusing to export"):
                server.add_export_path("cache", warm_cache)
            # The refused export is not registered...
            assert "cache" not in server._exports
        # ...and the driver was closed, so a repair can reopen it.
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            img.check(repair=True)
            assert img.check().ok

    def test_verify_false_skips_check(self, warm_cache):
        with Qcow2Image.open(warm_cache, read_only=False,
                             open_backing=False) as img:
            data_off = next(
                e & C.L2E_OFFSET_MASK
                for e in img._load_l2(0) if e)
            img._alloc.set_refcount(data_off // CLUSTER, 0)
            img._alloc.flush_refcounts()
            img.closed = True
            img._f.close()
        with BlockServer() as server:
            driver = server.add_export_path("cache", warm_cache,
                                            verify=False)
            assert "cache" in server._exports
            assert not driver.closed
