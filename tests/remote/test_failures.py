"""Failure-path and concurrency tests for the remote block layer.

Covers the hardening work of ISSUE 1: parallel dispatch of reads on
one export, client deadlines + reconnect-and-retry over injected
faults, graceful server shutdown with in-flight requests, and quota
exhaustion mid-cold-run over a remote backing chain.
"""

import threading
import time

import pytest

from repro.errors import (
    RemoteDisconnectedError,
    RemoteError,
    RemoteTimeoutError,
)
from repro.imagefmt.driver import BlockDriver
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.remote.protocol import ProtocolError, RemoteOpError
from repro.units import KiB, MiB

from tests.conftest import pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

FAST_RETRY = dict(max_retries=2, backoff_base=0.01, backoff_max=0.05)


class _BarrierReads(BlockDriver):
    """A driver whose reads only complete when N run simultaneously."""

    format_name = "barrier"

    def __init__(self, parties: int, wait: float = 10.0,
                 size: int = MiB) -> None:
        super().__init__("<barrier>", size, True)
        self._barrier = threading.Barrier(parties)
        self._wait = wait

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        self._barrier.wait(timeout=self._wait)
        return b"\x5a" * length

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


class _SlowReads(BlockDriver):
    """A driver with a fixed per-read latency."""

    format_name = "slow"

    def __init__(self, delay: float, size: int = MiB) -> None:
        super().__init__("<slow>", size, True)
        self._delay = delay

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        time.sleep(self._delay)
        return b"\x07" * length

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


def _server_threads(server: BlockServer) -> list[threading.Thread]:
    prefix = f"blockserver-{server.port}"
    return [t for t in threading.enumerate()
            if t.name.startswith(prefix) and t.is_alive()]


class TestParallelDispatch:
    def test_reads_of_one_export_run_in_parallel(self):
        """N clients must be inside _read_impl simultaneously, which the
        old export-wide mutex made impossible."""
        parties = 4
        driver = _BarrierReads(parties)
        results = []
        with BlockServer() as server:
            server.add_export("b", driver)

            def reader():
                with RemoteImage.connect(server.url("b")) as img:
                    results.append(img.read(0, 4096))

            threads = [threading.Thread(target=reader)
                       for _ in range(parties)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert results == [b"\x5a" * 4096] * parties

    def test_serialized_baseline_cannot_rendezvous(self):
        """With parallel_reads=False the same barrier read deadlocks and
        times out — proving the knob really serializes."""
        driver = _BarrierReads(2, wait=0.3)
        errors = []
        with BlockServer(parallel_reads=False) as server:
            server.add_export("b", driver)

            def reader():
                try:
                    with RemoteImage.connect(server.url("b"),
                                             **FAST_RETRY) as img:
                        img.read(0, 64)
                except ProtocolError as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert len(errors) == 2  # both reads got BrokenBarrierError

    def test_many_clients_bytes_and_stats_exact(self, small_base):
        """Correct bytes under concurrency, and ExportStats — now fully
        mutex-guarded, including `connections` — stay exact."""
        n_clients, n_reads = 8, 25
        base = RawImage.open(small_base)
        failures = []
        with BlockServer() as server:
            server.add_export("base", base)

            def reader(tag: int):
                try:
                    with RemoteImage.connect(server.url("base")) as img:
                        for i in range(n_reads):
                            off = ((tag * 131 + i * 17) % 1000) * 4096
                            got = img.read(off, 4096)
                            if got != pattern(off, 4096):
                                failures.append((tag, i))
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [threading.Thread(target=reader, args=(t,))
                       for t in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not failures
            stats = server.export_stats("base")
            assert stats.connections == n_clients
            assert stats.read_ops == n_clients * n_reads
            assert stats.bytes_read == n_clients * n_reads * 4096
        base.close()


class TestConcurrencyContract:
    """The parallel-dispatch decision must respect the whole backing
    chain and the range-tracking contract, not just the top driver."""

    def test_ro_overlay_over_local_ro_backing_is_concurrent(
            self, tmp_path, small_base):
        p = str(tmp_path / "ov.qcow2")
        Qcow2Image.create(p, backing_file=small_base).close()
        with Qcow2Image.open(p, read_only=True) as ov:
            assert ov.backing.supports_concurrent_reads
            assert ov.supports_concurrent_reads

    def test_ro_overlay_over_remote_backing_serialized(
            self, tmp_path, small_base):
        """An nbd:// backing is one socket with strictly alternating
        frames — the overlay must veto parallel reads for the chain."""
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            p = str(tmp_path / "ov.qcow2")
            Qcow2Image.create(p, backing_file=server.url("base")).close()
            with Qcow2Image.open(p, read_only=True) as ov:
                assert ov.read_only
                assert not ov.supports_concurrent_reads
                server.add_export("ov", ov)
                assert not server._exports["ov"].parallel_reads
        base.close()

    def test_ro_overlay_over_cache_backing_serialized(
            self, tmp_path, small_base):
        """A cache backing is opened read-write and its read path does
        CoR writes, so the read-only overlay is still not safe."""
        cache_p = str(tmp_path / "cache.qcow2")
        Qcow2Image.create(cache_p, backing_file=small_base,
                          cache_quota=2 * MiB).close()
        ov_p = str(tmp_path / "ov.qcow2")
        Qcow2Image.create(ov_p, backing_file=cache_p,
                          backing_format="qcow2").close()
        with Qcow2Image.open(ov_p, read_only=True) as ov:
            assert not ov.backing.read_only  # cache opened rw for CoR
            assert not ov.supports_concurrent_reads

    def test_range_tracked_export_serialized(self, small_base):
        """Range tracking (Table 1 unique reads) mutates a RangeSet on
        every read; add_export must fall back to serialized dispatch."""
        tracked = RawImage.open(small_base)
        tracked.enable_range_tracking()
        clean = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("tracked", tracked)
            server.add_export("clean", clean)
            assert not server._exports["tracked"].parallel_reads
            assert server._exports["clean"].parallel_reads
        tracked.close()
        clean.close()

    def test_range_tracked_backing_serialized(self, tmp_path, small_base):
        p = str(tmp_path / "ov.qcow2")
        Qcow2Image.create(p, backing_file=small_base).close()
        with Qcow2Image.open(p, read_only=True) as ov:
            ov.backing.enable_range_tracking()
            with BlockServer() as server:
                server.add_export("ov", ov)
                assert not server._exports["ov"].parallel_reads


class TestRetry:
    def test_read_survives_injected_drop(self, small_base):
        base = RawImage.open(small_base)
        fi = FaultInjector()
        fi.inject("drop")
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     **FAST_RETRY) as img:
                assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
                stats = img.transport_stats
                assert stats.retries == 1
                assert stats.reconnects == 1
            assert fi.stats.dropped == 1
            assert server.export_stats("base").connections == 2
        base.close()

    def test_read_survives_deadline_timeout(self, small_base):
        base = RawImage.open(small_base)
        fi = FaultInjector(delay_seconds=0.6)
        fi.inject("delay")
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), op_timeout=0.15,
                                     **FAST_RETRY) as img:
                assert img.read(0, 4096) == pattern(0, 4096)
                assert img.transport_stats.timeouts == 1
                assert img.transport_stats.retries == 1
        base.close()

    def test_injected_error_is_not_retried(self, small_base):
        """Server-reported errors arrive on a healthy connection: they
        surface immediately and the connection keeps working."""
        base = RawImage.open(small_base)
        fi = FaultInjector()
        fi.inject("error")
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     **FAST_RETRY) as img:
                with pytest.raises(RemoteOpError, match="injected"):
                    img.read(0, 64)
                assert img.transport_stats.retries == 0
                assert img.read(0, 64) == pattern(0, 64)
        base.close()

    def test_retries_exhausted_raises_remote_error(self, small_base):
        base = RawImage.open(small_base)
        server = BlockServer()
        server.add_export("base", base)
        img = RemoteImage.connect(server.url("base"), max_retries=1,
                                  backoff_base=0.01, backoff_max=0.02)
        assert img.read(0, 64) == pattern(0, 64)
        server.close()
        with pytest.raises(RemoteError):
            img.read(0, 64)
        img.close()
        base.close()

    def test_connect_to_dead_server_raises(self, small_base):
        base = RawImage.open(small_base)
        server = BlockServer()
        server.add_export("base", base)
        url = server.url("base")
        server.close()
        with pytest.raises(RemoteDisconnectedError):
            RemoteImage.connect(url)
        base.close()

    def test_random_drop_rate_is_transparent(self, small_base):
        """A lossy server (seeded, 20% drops) still serves every byte."""
        base = RawImage.open(small_base)
        fi = FaultInjector(drop_rate=0.2, seed=7)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), max_retries=6,
                                     backoff_base=0.005,
                                     backoff_max=0.02) as img:
                for i in range(40):
                    off = i * 8192
                    assert img.read(off, 4096) == pattern(off, 4096)
                assert img.transport_stats.retries >= 1
            assert fi.stats.dropped >= 1
        base.close()


class TestGracefulShutdown:
    def test_close_drains_in_flight_request(self):
        driver = _SlowReads(0.6)
        server = BlockServer()
        server.add_export("slow", driver)
        img = RemoteImage.connect(server.url("slow"), max_retries=0)
        result: dict = {}

        def reader():
            try:
                result["data"] = img.read(0, 4096)
            except Exception as exc:
                result["exc"] = exc

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.2)  # the read is now in flight inside dispatch
        server.close()
        t.join(timeout=10)
        assert result.get("data") == b"\x07" * 4096, result
        img.close()
        assert _server_threads(server) == []

    def test_close_leaves_no_live_threads(self, small_base):
        base = RawImage.open(small_base)
        server = BlockServer()
        server.add_export("base", base)
        imgs = [RemoteImage.connect(server.url("base")) for _ in range(3)]
        for img in imgs:
            assert img.read(0, 512) == pattern(0, 512)
        # Clients left connected and idle: their workers are blocked in
        # recv and must still be unblocked, joined, and cleaned up.
        server.close()
        assert _server_threads(server) == []
        assert not any(t.is_alive() for t in threading.enumerate()
                       if t.name.startswith(f"blockserver-{server.port}"))
        server.close()  # idempotent
        for img in imgs:
            img.close()
        base.close()

    def test_connect_after_close_refused(self, small_base):
        base = RawImage.open(small_base)
        server = BlockServer()
        server.add_export("base", base)
        url = server.url("base")
        server.close()
        with pytest.raises(RemoteError):
            RemoteImage.connect(url, timeout=1.0)
        base.close()


class TestRemoteQuotaExhaustion:
    def test_quota_exhaustion_mid_cold_run(self, tmp_path, small_base):
        """A cache over an nbd:// backing hits its quota mid-cold-run:
        the guest read still returns correct bytes, CoR turns off, and
        the file stays within quota."""
        quota = 96 * KiB
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            cache_p = str(tmp_path / "cache.qcow2")
            Qcow2Image.create(cache_p, backing_file=server.url("base"),
                              cluster_size=512,
                              cache_quota=quota).close()
            cow = Qcow2Image.create(str(tmp_path / "cow.qcow2"),
                                    backing_file=cache_p,
                                    backing_format="qcow2")
            with cow:
                data = cow.read(0, 512 * KiB)
                assert data == pattern(0, 512 * KiB)
                cache = cow.backing
                assert cache.is_cache
                assert cache.cache_runtime.cor.space_errors >= 1
                assert not cache.cache_runtime.cor.enabled
                assert cache.physical_size <= quota
        base.close()
