"""Wire protocol v5: cluster-manifest fetch and its clamp matrix.

v5 frames are v4 frames — the version exists so both sides know
``REQ_MANIFEST`` is legal.  Under test: the manifest round-trip
(attached and lazily built), write invalidation, the negotiation
clamp against every older server, and the per-request error contract
(a MANIFEST on a sub-v5 connection errors *that request*; the stream
stays usable).  Runs against the event-loop engine here and is
re-collected against the threaded engine by
``test_manifest_protocol_threaded_engine.py``.
"""

import socket

import pytest

from repro.imagefmt.manifest import ClusterManifest, build_manifest
from repro.imagefmt.raw import RawImage
from repro.remote import BlockServer, RemoteImage
from repro.remote import protocol as wire
from repro.units import KiB, MiB

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def pattern(offset: int, length: int) -> bytes:
    blob = b"".join(b"%08x" % (i & 0xFFFFFFFF)
                    for i in range(offset // 8, (offset + length) // 8 + 2))
    return blob[offset % 8: offset % 8 + length]


@pytest.fixture
def base(tmp_path):
    img = RawImage.create(str(tmp_path / "base.raw"), 1 * MiB)
    img.write(0, pattern(0, 1 * MiB))
    yield img
    img.close()


class TestManifestFetch:
    def test_attached_manifest_roundtrips(self, base):
        manifest = build_manifest(base, vmi_id="base")
        with BlockServer() as server:
            server.add_export("base", base, manifest=manifest)
            assert server.health()["exports"]["base"]["manifest"] is True
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.VERSION_5
                fetched = img.fetch_manifest()
        assert fetched == manifest
        assert fetched.content_id == manifest.content_id

    def test_lazy_build_on_bare_export(self, base):
        """No manifest attached: the server scans the export once and
        serves the cached blob from then on."""
        with BlockServer() as server:
            server.add_export("base", base)
            assert server.health()["exports"]["base"]["manifest"] is False
            with RemoteImage.connect(server.url("base")) as img:
                first = img.fetch_manifest()
                second = img.fetch_manifest()
        expected = build_manifest(base, vmi_id="base")
        assert first.digests == expected.digests
        assert first == second

    def test_manifest_ops_counted(self, base):
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                img.fetch_manifest()
                img.fetch_manifest()
            assert server.export_stats("base").manifest_ops == 2
            assert server.export_stats("base").summary()[
                "manifest_ops"] == 2

    def test_write_invalidates_manifest(self, base):
        with BlockServer() as server:
            server.add_export("rw", base, writable=True)
            with RemoteImage.connect(server.url("rw"),
                                     read_only=False) as img:
                before = img.fetch_manifest()
                img.write(0, b"\xde\xad" * (32 * KiB))
                img.flush()
                after = img.fetch_manifest()
        assert before.digests[0] != after.digests[0]
        assert after.verify_cluster(0, b"\xde\xad" * (32 * KiB))

    def test_set_manifest_replaces(self, base):
        stub = ClusterManifest(vmi_id="stub", size=base.size,
                               cluster_size=64 * KiB, digests={})
        with BlockServer() as server:
            server.add_export("base", base)
            server.set_manifest("base", stub)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.fetch_manifest() == stub

    def test_set_manifest_unknown_export(self, base):
        with BlockServer() as server:
            with pytest.raises(KeyError):
                server.set_manifest("nope", None)

    def test_verify_against_served_bytes(self, base):
        """The fetched manifest verifies the same connection's reads —
        the exact check a peer-fill client performs."""
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                manifest = img.fetch_manifest()
                for index in (0, 1, len(manifest) - 1):
                    off, ln = manifest.cluster_extent(index)
                    assert manifest.verify_cluster(index,
                                                   img.read(off, ln))


class TestClampMatrix:
    @pytest.mark.parametrize("server_max", [1, 2, 3, 4])
    def test_v5_client_clamped_by_old_server(self, base, server_max):
        """Negotiation lands on the server's ceiling; fetch_manifest
        degrades to a clean client-side ProtocolError while ordinary
        reads keep working."""
        with BlockServer(max_protocol=server_max) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == server_max
                with pytest.raises(wire.ProtocolError,
                                   match="requires protocol v5"):
                    img.fetch_manifest()
                assert img.read(0, 4 * KiB) == pattern(0, 4 * KiB)

    @pytest.mark.parametrize("pin", [2, 3, 4])
    def test_pinned_old_client_against_v5_server(self, base, pin):
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     protocol=pin) as img:
                assert img.protocol_version == pin
                with pytest.raises(wire.ProtocolError):
                    img.fetch_manifest()
                assert img.read(0, 4 * KiB) == pattern(0, 4 * KiB)

    def test_raw_manifest_request_on_v3_connection(self, base):
        """Defense in depth: a non-conforming client that sends
        REQ_MANIFEST over a v3 negotiation gets a per-request error —
        the framing survives and the next request is served."""
        with BlockServer() as server:
            server.add_export("base", base)
            with socket.create_connection((server.host, server.port),
                                          timeout=5.0) as sock:
                sock.settimeout(5.0)
                wire.send_handshake_request_v2(sock, "base", version=3)
                version, _size, _granted = \
                    wire.recv_handshake_response_ex(sock, max_version=3)
                assert version == 3
                wire.send_request_v3(
                    sock, 7, wire.Request(wire.REQ_MANIFEST, 0, 0))
                buf = wire.recv_exact(sock, wire.RESPONSE2_HEADER_SIZE)
                status, tag, length = \
                    wire.decode_response_v2_header(buf)
                payload = wire.recv_exact(sock, length)
                assert tag == 7
                assert status != wire.STATUS_OK
                assert b"protocol v5" in payload
                # Stream intact: an ordinary read still answers.
                wire.send_request_v3(
                    sock, 8, wire.Request(wire.REQ_READ, 0, 4096))
                buf = wire.recv_exact(sock, wire.RESPONSE2_HEADER_SIZE)
                status, tag, length = \
                    wire.decode_response_v2_header(buf)
                assert (status, tag) == (wire.STATUS_OK, 8)
                assert wire.recv_exact(sock, length) == pattern(0, 4096)

    def test_raw_manifest_request_on_v1_connection(self, base):
        with BlockServer() as server:
            server.add_export("base", base)
            with socket.create_connection((server.host, server.port),
                                          timeout=5.0) as sock:
                sock.settimeout(5.0)
                wire.send_handshake_request(sock, "base")
                wire.recv_handshake_response(sock)
                wire.send_request(
                    sock, wire.Request(wire.REQ_MANIFEST, 0, 0))
                with pytest.raises(wire.RemoteOpError,
                                   match="protocol v5"):
                    wire.recv_response(sock)
                # Lock-step framing intact after the error.
                wire.send_request(
                    sock, wire.Request(wire.REQ_READ, 0, 4096))
                assert wire.recv_response(sock) == pattern(0, 4096)

    def test_server_accepts_v5_max_protocol(self, base):
        with BlockServer(max_protocol=5) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.VERSION_5
                assert len(img.fetch_manifest()) > 0
