"""The v5 manifest matrix against the threaded engine.

``test_manifest_protocol.py`` exercises the manifest round-trip and
the clamp matrix on the default event-loop engine; this module
re-collects the same classes with ``REPRO_SERVER_ENGINE=threaded``
pinned so the legacy A/B engine honours the identical v5 contract.
"""

import pytest

from tests.remote.test_manifest_protocol import (  # noqa: F401
    TestClampMatrix,
    TestManifestFetch,
    base,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(autouse=True)
def _threaded_engine(monkeypatch):
    """Every BlockServer in this module runs the legacy engine."""
    monkeypatch.setenv("REPRO_SERVER_ENGINE", "threaded")
