"""Pipelined wire protocol v2: negotiation, out-of-order completion,
reconnect-and-replay with a window in flight, and transport stats."""

import threading
import time

import pytest

from repro.errors import RemoteError
from repro.imagefmt.driver import BlockDriver
from repro.imagefmt.raw import RawImage
from repro.remote import (
    BlockServer,
    ExportRefusedError,
    FaultInjector,
    RemoteImage,
)
from repro.remote import protocol as wire
from repro.units import KiB, MiB

from tests.conftest import pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

FAST_RETRY = dict(max_retries=3, backoff_base=0.01, backoff_max=0.05)


class TestNegotiation:
    def test_default_negotiates_max(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.MAX_VERSION
                assert img.pipeline_depth == 8
                assert img.read(0, 4096) == pattern(0, 4096)
        base.close()

    def test_v1_client_against_v2_server(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     protocol=1) as img:
                assert img.protocol_version == wire.VERSION_1
                assert img.pipeline_depth == 1
                assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
        base.close()

    def test_v2_client_falls_back_against_old_server(self, small_base):
        """A pre-v2 server drops the unknown-magic hello; the client
        must silently retry with the v1 hello and work."""
        base = RawImage.open(small_base)
        with BlockServer(max_protocol=1) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.VERSION_1
                assert img.read(0, 4096) == pattern(0, 4096)
        base.close()

    def test_pinned_v2_against_old_server_raises(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer(max_protocol=1) as server:
            server.add_export("base", base)
            with pytest.raises((wire.ProtocolError, RemoteError)):
                RemoteImage.connect(server.url("base"), protocol=2)
        base.close()

    def test_export_refusal_is_not_retried_as_v1(self, small_base):
        """An unknown export is a definitive answer on v2 — the client
        must not mask it behind a v1 fallback attempt."""
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with pytest.raises(ExportRefusedError):
                RemoteImage.connect(server.url("nope"))
            assert server.export_stats("base").connections == 0
        base.close()

    def test_downgrade_remembered_across_reconnects(self, small_base):
        """After falling back to v1, a reconnect (drop injected) must
        go straight to v1 — the old server would drop a v2 probe and
        the op would pay an extra round of reconnects."""
        base = RawImage.open(small_base)
        fi = FaultInjector()
        with BlockServer(max_protocol=1, fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     **FAST_RETRY) as img:
                assert img.protocol_version == wire.VERSION_1
                fi.inject("drop")
                assert img.read(0, 4096) == pattern(0, 4096)
                assert img.protocol_version == wire.VERSION_1
                assert img.transport_stats.reconnects == 1
        base.close()

    def test_invalid_protocol_and_depth_rejected(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with pytest.raises(ValueError):
                RemoteImage.connect(server.url("base"), protocol=6)
            with pytest.raises(ValueError):
                RemoteImage.connect(server.url("base"), depth=0)
        base.close()

    def test_server_validates_max_protocol(self):
        with pytest.raises(ValueError):
            BlockServer(max_protocol=9)


class _BarrierReads(BlockDriver):
    """Reads complete only when ``parties`` of them run simultaneously."""

    format_name = "barrier"

    def __init__(self, parties: int, size: int = MiB) -> None:
        super().__init__("<barrier>", size, True)
        self._barrier = threading.Barrier(parties)

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        self._barrier.wait(timeout=10)
        return b"\x5a" * length

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


class _StallFirst(BlockDriver):
    """Offset-0 reads stall until a read of a higher offset finishes,
    forcing the completion order to invert the submission order."""

    format_name = "stall"

    def __init__(self, size: int = MiB) -> None:
        super().__init__("<stall>", size, True)
        self._unblock = threading.Event()
        self.completion_order: list[int] = []

    @property
    def supports_concurrent_reads(self) -> bool:
        return True

    def _read_impl(self, offset: int, length: int) -> bytes:
        if offset == 0:
            if not self._unblock.wait(timeout=10):
                raise TimeoutError("offset-0 read never unblocked")
        self.completion_order.append(offset)
        if offset > 0:
            self._unblock.set()
        return pattern(offset, length)

    def _write_impl(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def _close_impl(self) -> None:
        pass


class TestOutOfOrderCompletion:
    def test_one_connection_overlaps_its_own_reads(self):
        """Two tagged requests from a single connection must be inside
        _read_impl simultaneously — impossible under v1 lock-step."""
        driver = _BarrierReads(parties=2)
        with BlockServer() as server:
            server.add_export("b", driver)
            with RemoteImage.connect(server.url("b"), depth=4) as img:
                got = img.read_batch([(0, 4096), (8192, 4096)])
        assert got == [b"\x5a" * 4096] * 2

    def test_responses_demuxed_by_tag_not_order(self):
        """The server answers the second request first; the client must
        still hand each caller its own bytes."""
        driver = _StallFirst()
        with BlockServer() as server:
            server.add_export("s", driver)
            with RemoteImage.connect(server.url("s"), depth=4) as img:
                got = img.read_batch([(0, 4096), (64 * KiB, 4096)])
        assert driver.completion_order[0] == 64 * KiB
        assert got[0] == pattern(0, 4096)
        assert got[1] == pattern(64 * KiB, 4096)

    def test_large_read_reassembled_across_chunks(self, small_base):
        """A guest read split into many tagged chunks comes back intact
        even when the server completes chunks out of order."""
        base = RawImage.open(small_base)
        fi = FaultInjector(delay_rate=1.0, delay_seconds=0.001)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), depth=8,
                                     chunk_size=64 * KiB) as img:
                assert img.read(0, MiB) == pattern(0, MiB)
                assert img.transport_stats.inflight_hwm >= 2
        base.close()

    def test_window_respects_depth(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), depth=2,
                                     chunk_size=4 * KiB) as img:
                assert img.read(0, 256 * KiB) == pattern(0, 256 * KiB)
                assert 2 <= img.transport_stats.inflight_hwm <= 2
        base.close()

    def test_read_batch_validates_and_handles_empty(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.read_batch([]) == []
                assert img.read_batch([(0, 0)]) == [b""]
                from repro.errors import OutOfBoundsError
                with pytest.raises(OutOfBoundsError):
                    img.read_batch([(0, 512), (img.size, 512)])
        base.close()

    def test_read_batch_works_over_v1_too(self, small_base):
        """The bulk interface must be transport-agnostic: against a v1
        connection it degrades to serial round-trips, same bytes."""
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     protocol=1) as img:
                got = img.read_batch([(0, 4096), (MiB, 4096)])
        assert got == [pattern(0, 4096), pattern(MiB, 4096)]
        base.close()


class TestPipelinedRecovery:
    def test_drop_with_window_in_flight_replays_unacked(self, small_base):
        """Sever the connection while >= 2 tagged requests are in
        flight: every extent must still come back correct, via one
        reconnect that replays only the unacknowledged tags."""
        base = RawImage.open(small_base)
        fi = FaultInjector()
        # Serve request 1 normally, cut the wire on request 2 while
        # requests 3..N sit in the pipeline behind it.
        fi.inject("none", "drop")
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), depth=4,
                                     **FAST_RETRY) as img:
                extents = [(i * 256 * KiB, 4 * KiB) for i in range(6)]
                got = img.read_batch(extents)
                stats = img.transport_stats
                assert stats.retries >= 1
                assert stats.reconnects >= 1
        assert got == [pattern(off, ln) for off, ln in extents]
        assert fi.stats.dropped == 1
        base.close()

    def test_pipelined_write_survives_drop(self, tmp_path):
        size = 2 * MiB
        target = RawImage.create(str(tmp_path / "t.raw"), size)
        fi = FaultInjector()
        fi.inject("none", "drop")
        with BlockServer(fault_injector=fi) as server:
            server.add_export("t", target, writable=True)
            with RemoteImage.connect(server.url("t"), read_only=False,
                                     depth=4, chunk_size=128 * KiB,
                                     **FAST_RETRY) as img:
                img.write(0, pattern(0, MiB))
                img.flush()
                assert img.transport_stats.reconnects >= 1
        assert target.read(0, MiB) == pattern(0, MiB)
        target.close()

    def test_depth1_v2_equals_lockstep(self, small_base):
        """depth=1 on v2 is the A/B control: still tagged frames, but
        never more than one in flight."""
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     depth=1) as img:
                assert img.protocol_version == wire.MAX_VERSION
                assert img.read(0, 128 * KiB) == pattern(0, 128 * KiB)
                assert img.transport_stats.inflight_hwm == 1
        base.close()

    def test_retries_exhausted_mid_batch_raises(self, small_base):
        base = RawImage.open(small_base)
        fi = FaultInjector(drop_rate=1.0)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), depth=4,
                                     max_retries=2, backoff_base=0.01,
                                     backoff_max=0.02) as img:
                with pytest.raises(RemoteError):
                    img.read_batch([(0, 4096), (8192, 4096)])
                # The batch's pending entries must not leak.
                assert img._pending == {}
        base.close()


class TestTransportObservability:
    def test_client_counts_bytes_and_latency(self, small_base):
        base = RawImage.open(small_base, read_only=False)
        with BlockServer() as server:
            server.add_export("base", base, writable=True)
            with RemoteImage.connect(server.url("base"),
                                     read_only=False) as img:
                img.read(0, 64 * KiB)
                img.write(0, pattern(0, 4096))
                img.flush()
                stats = img.transport_stats
                assert stats.bytes_received >= 64 * KiB
                assert stats.bytes_sent >= 4096
                assert stats.latency["read"].count == 1
                assert stats.latency["write"].count == 1
                assert stats.latency["flush"].count == 1
                summary = stats.summary()
                assert summary["latency"]["read"]["count"] == 1
                assert summary["inflight_hwm"] >= 1
                info = img.image_info()
                assert info["protocol_version"] == wire.MAX_VERSION
                assert info["pipeline_depth"] == img.pipeline_depth
                assert info["transport"]["bytes_received"] \
                    >= 64 * KiB
        base.close()

    def test_server_counts_wire_bytes_and_inflight(self, small_base):
        base = RawImage.open(small_base)
        fi = FaultInjector(delay_rate=1.0, delay_seconds=0.002)
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"), depth=8,
                                     chunk_size=32 * KiB) as img:
                img.read(0, 512 * KiB)
            stats = server.export_stats("base")
            assert stats.wire_bytes_sent >= 512 * KiB
            assert stats.wire_bytes_received > 0
            assert stats.inflight_hwm >= 2
            assert stats.latency["read"].count == 16
            assert stats.summary()["latency"]["read"]["p50_ms"] > 0
        base.close()

    def test_v1_accounting_still_works(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     protocol=1) as img:
                img.read(0, 4096)
                assert img.transport_stats.bytes_received >= 4096
                assert img.transport_stats.latency["read"].count == 1
            stats = server.export_stats("base")
            assert stats.wire_bytes_sent >= 4096
            assert stats.inflight_hwm == 1
        base.close()


class TestInteropSuiteParity:
    """The same read/write/flush workload must behave identically on
    every protocol pairing (acceptance: existing suite semantics hold
    both across versions)."""

    @pytest.mark.parametrize("server_max,client_pin", [
        (2, None),   # v2 <-> v2
        (2, 1),      # v1 client, v2 server
        (1, None),   # v2 client falls back to v1 server
    ])
    def test_rw_workload_identical(self, tmp_path, server_max,
                                   client_pin):
        size = 2 * MiB
        target = RawImage.create(
            str(tmp_path / f"t{server_max}{client_pin}.raw"), size)
        with BlockServer(max_protocol=server_max) as server:
            server.add_export("t", target, writable=True)
            with RemoteImage.connect(server.url("t"), read_only=False,
                                     protocol=client_pin) as img:
                img.write(4096, pattern(4096, 64 * KiB))
                img.flush()
                assert img.read(4096, 64 * KiB) \
                    == pattern(4096, 64 * KiB)
                assert img.read(0, 4096) == b"\0" * 4096
                got = img.read_batch([(4096, 512), (MiB, 512)])
        assert got == [pattern(4096, 512), b"\0" * 512]
        target.close()


class TestSequentialThroughput:
    def test_depth8_beats_depth1_under_latency(self, small_base):
        """The headline property at test scale: with per-request
        latency injected, a pipelined sequential read wins clearly.
        (The full-size A/B lives in benchmarks/bench_ext_remote.py.)"""
        base = RawImage.open(small_base)
        fi = FaultInjector(delay_rate=1.0, delay_seconds=0.002)
        chunk = 128 * KiB
        total = 2 * MiB  # 16 chunks
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            times = {}
            for label, kw in (("v1", dict(protocol=1)),
                              ("v2", dict(depth=8))):
                with RemoteImage.connect(server.url("base"),
                                         chunk_size=chunk,
                                         **kw) as img:
                    t0 = time.perf_counter()
                    data = img.read(0, total)
                    times[label] = time.perf_counter() - t0
                    assert data == pattern(0, total)
        assert times["v2"] < times["v1"] / 2, times
        base.close()
