"""Tier-1 smoke run of the pipelining benchmark.

Runs ``benchmarks/bench_ext_remote._run_pipeline`` at quick scale so
plain ``pytest`` exercises the latency-shaped v1-vs-v2 A/B (and the
warmer equivalence check) on every run.  The log is saved to a scratch
dir only — ``benchmarks/results/BENCH_remote_pipeline.json`` is the
committed paper-scale record and stays untouched.
"""

import pytest

from benchmarks.bench_ext_remote import _run_pipeline

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.timeout(60),
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]


def test_pipeline_smoke(tmp_path):
    log = _run_pipeline(quick=True)
    # Scratch dir, never benchmarks/results/: the committed artifact is
    # the paper-scale record and only the full benchmark may write it.
    log.save(str(tmp_path))

    assert log.scalars["mismatched_reads"] == 0
    assert log.scalars["warm_checksum_ok"] == 1.0
    assert log.scalars["v2_inflight_hwm"] >= 4
    # Full scale demands >= 3x; at smoke scale fixed connection and
    # scheduling overheads weigh more, so the floor is 2x.
    assert log.scalars["speedup"] >= 2.0
