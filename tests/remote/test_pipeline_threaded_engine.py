"""The interop/negotiation/recovery matrix against the threaded engine.

The event loop is the default serving engine, so the whole suite —
``test_pipeline.py`` in particular, which is the wire-contract suite —
exercises it.  This module re-collects those same test classes with
``REPRO_SERVER_ENGINE=threaded`` pinned, so the legacy A/B engine
keeps passing the identical contract: negotiation across every
server-max x client-pin combination, out-of-order completion,
mid-window recovery, and transport observability.  One contract, two
engines, zero duplicated test code.

(``TestSequentialThroughput`` is deliberately left out: it is a timing
assertion, not a contract, and running it twice doubles the slowest
part of the remote suite for no added coverage.)
"""

import pytest

from tests.remote.test_pipeline import (  # noqa: F401  (re-collected)
    TestInteropSuiteParity,
    TestNegotiation,
    TestOutOfOrderCompletion,
    TestPipelinedRecovery,
    TestTransportObservability,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(autouse=True)
def _threaded_engine(monkeypatch):
    """Every BlockServer in this module runs the legacy engine."""
    monkeypatch.setenv("REPRO_SERVER_ENGINE", "threaded")
