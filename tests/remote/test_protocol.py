"""Unit tests for the wire protocol (socket-pair based)."""

import socket

import pytest

from repro.remote import protocol as wire


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestHandshake:
    def test_roundtrip(self, pair):
        c, s = pair
        wire.send_handshake_request(c, "images/centos")
        assert wire.recv_handshake_request(s) == "images/centos"
        wire.send_handshake_response(s, size=123456)
        assert wire.recv_handshake_response(c) == 123456

    def test_refusal(self, pair):
        c, s = pair
        wire.send_handshake_response(s, error=True)
        with pytest.raises(wire.ProtocolError):
            wire.recv_handshake_response(c)

    def test_unicode_export_name(self, pair):
        c, s = pair
        wire.send_handshake_request(c, "imágé")
        assert wire.recv_handshake_request(s) == "imágé"

    def test_bad_magic(self, pair):
        c, s = pair
        s.sendall(b"\x00" * 14)
        with pytest.raises(wire.ProtocolError, match="magic"):
            wire.recv_handshake_response(c)

    def test_name_too_long(self, pair):
        c, _ = pair
        with pytest.raises(ValueError):
            wire.send_handshake_request(c, "x" * 70000)


class TestRequests:
    def test_read_roundtrip(self, pair):
        c, s = pair
        wire.send_request(c, wire.Request(wire.REQ_READ, 4096, 512))
        req = wire.recv_request(s)
        assert req == wire.Request(wire.REQ_READ, 4096, 512, b"")

    def test_write_carries_payload(self, pair):
        c, s = pair
        wire.send_request(c, wire.Request(wire.REQ_WRITE, 0, 5,
                                          b"hello"))
        req = wire.recv_request(s)
        assert req.payload == b"hello"

    def test_oversized_rejected_on_send(self, pair):
        c, _ = pair
        with pytest.raises(ValueError):
            wire.send_request(c, wire.Request(
                wire.REQ_READ, 0, wire.MAX_PAYLOAD + 1))

    def test_oversized_rejected_on_recv(self, pair):
        c, s = pair
        import struct

        s.sendall(struct.pack(">IBQI", wire.MAGIC, wire.REQ_READ, 0,
                              wire.MAX_PAYLOAD + 1))
        with pytest.raises(wire.ProtocolError, match="oversized"):
            wire.recv_request(c)

    def test_eof_mid_message(self, pair):
        c, s = pair
        s.sendall(b"\x52")
        s.close()
        with pytest.raises(wire.ProtocolError, match="closed"):
            wire.recv_request(c)


class TestResponses:
    def test_payload_roundtrip(self, pair):
        c, s = pair
        wire.send_response(s, payload=b"data-bytes")
        assert wire.recv_response(c) == b"data-bytes"

    def test_empty_payload(self, pair):
        c, s = pair
        wire.send_response(s)
        assert wire.recv_response(c) == b""

    def test_error_raises_with_message(self, pair):
        c, s = pair
        wire.send_response(s, error="disk on fire")
        with pytest.raises(wire.ProtocolError, match="disk on fire"):
            wire.recv_response(c)


class TestHandshakeV2:
    def test_v2_roundtrip(self, pair):
        c, s = pair
        wire.send_handshake_request_v2(c, "images/centos")
        assert wire.recv_handshake_request_any(s) == \
            (wire.VERSION_2, "images/centos")
        wire.send_handshake_response_v2(s, size=654321)
        assert wire.recv_handshake_response_v2(c) == \
            (wire.VERSION_2, 654321)

    def test_any_accepts_v1_hello(self, pair):
        c, s = pair
        wire.send_handshake_request(c, "old-school")
        assert wire.recv_handshake_request_any(s) == \
            (wire.VERSION_1, "old-school")

    def test_old_server_rejects_v2_magic(self, pair):
        """max_version=1 must behave exactly like a genuine pre-v2
        server: unknown magic -> ProtocolError -> dropped connection."""
        c, s = pair
        wire.send_handshake_request_v2(c, "x")
        with pytest.raises(wire.ProtocolError, match="magic"):
            wire.recv_handshake_request_any(s, max_version=1)

    def test_refusal_is_export_refused(self, pair):
        c, s = pair
        wire.send_handshake_response_v2(s, error=True)
        with pytest.raises(wire.ExportRefusedError):
            wire.recv_handshake_response_v2(c)

    def test_v1_refusal_is_export_refused_too(self, pair):
        c, s = pair
        wire.send_handshake_response(s, error=True)
        with pytest.raises(wire.ExportRefusedError):
            wire.recv_handshake_response(c)

    def test_unicode_export_name(self, pair):
        c, s = pair
        wire.send_handshake_request_v2(c, "imágé")
        assert wire.recv_handshake_request_any(s)[1] == "imágé"


class TestRequestsV2:
    def test_read_roundtrip_carries_tag(self, pair):
        c, s = pair
        wire.send_request_v2(c, 7, wire.Request(wire.REQ_READ,
                                                4096, 512))
        assert wire.recv_request_v2(s) == \
            (7, wire.Request(wire.REQ_READ, 4096, 512, b""))

    def test_write_payload_roundtrip(self, pair):
        c, s = pair
        wire.send_request_v2(c, 41, wire.Request(wire.REQ_WRITE, 0, 5,
                                                 b"hello"))
        tag, req = wire.recv_request_v2(s)
        assert (tag, req.payload) == (41, b"hello")

    def test_max_tag_roundtrip(self, pair):
        c, s = pair
        wire.send_request_v2(c, wire.MAX_TAG,
                             wire.Request(wire.REQ_FLUSH, 0, 0))
        tag, _ = wire.recv_request_v2(s)
        assert tag == wire.MAX_TAG

    def test_oversized_rejected(self, pair):
        c, _ = pair
        with pytest.raises(ValueError):
            wire.send_request_v2(c, 0, wire.Request(
                wire.REQ_READ, 0, wire.MAX_PAYLOAD + 1))

    def test_bad_magic_rejected(self, pair):
        c, s = pair
        import struct

        c.sendall(struct.pack(">IBIQI", wire.MAGIC, wire.REQ_READ,
                              0, 0, 512))
        with pytest.raises(wire.ProtocolError, match="magic"):
            wire.recv_request_v2(s)


class TestResponsesV2:
    def test_payload_echoes_tag(self, pair):
        c, s = pair
        wire.send_response_v2(s, 0xDEAD, payload=b"data-bytes")
        assert wire.recv_response_v2(c) == (0xDEAD, b"data-bytes", None)

    def test_error_carries_tag_and_message(self, pair):
        c, s = pair
        wire.send_response_v2(s, 3, error="disk on fire")
        tag, payload, err = wire.recv_response_v2(c)
        assert (tag, payload, err) == (3, b"", "disk on fire")

    def test_out_of_order_tags_preserved(self, pair):
        """Frames arrive in whatever order the server finished them;
        each must carry its own tag for the demux."""
        c, s = pair
        wire.send_response_v2(s, 2, payload=b"second")
        wire.send_response_v2(s, 1, payload=b"first")
        assert wire.recv_response_v2(c)[0] == 2
        assert wire.recv_response_v2(c)[0] == 1
