"""Unit tests for the wire protocol (socket-pair based)."""

import socket

import pytest

from repro.remote import protocol as wire


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestHandshake:
    def test_roundtrip(self, pair):
        c, s = pair
        wire.send_handshake_request(c, "images/centos")
        assert wire.recv_handshake_request(s) == "images/centos"
        wire.send_handshake_response(s, size=123456)
        assert wire.recv_handshake_response(c) == 123456

    def test_refusal(self, pair):
        c, s = pair
        wire.send_handshake_response(s, error=True)
        with pytest.raises(wire.ProtocolError):
            wire.recv_handshake_response(c)

    def test_unicode_export_name(self, pair):
        c, s = pair
        wire.send_handshake_request(c, "imágé")
        assert wire.recv_handshake_request(s) == "imágé"

    def test_bad_magic(self, pair):
        c, s = pair
        s.sendall(b"\x00" * 14)
        with pytest.raises(wire.ProtocolError, match="magic"):
            wire.recv_handshake_response(c)

    def test_name_too_long(self, pair):
        c, _ = pair
        with pytest.raises(ValueError):
            wire.send_handshake_request(c, "x" * 70000)


class TestRequests:
    def test_read_roundtrip(self, pair):
        c, s = pair
        wire.send_request(c, wire.Request(wire.REQ_READ, 4096, 512))
        req = wire.recv_request(s)
        assert req == wire.Request(wire.REQ_READ, 4096, 512, b"")

    def test_write_carries_payload(self, pair):
        c, s = pair
        wire.send_request(c, wire.Request(wire.REQ_WRITE, 0, 5,
                                          b"hello"))
        req = wire.recv_request(s)
        assert req.payload == b"hello"

    def test_oversized_rejected_on_send(self, pair):
        c, _ = pair
        with pytest.raises(ValueError):
            wire.send_request(c, wire.Request(
                wire.REQ_READ, 0, wire.MAX_PAYLOAD + 1))

    def test_oversized_rejected_on_recv(self, pair):
        c, s = pair
        import struct

        s.sendall(struct.pack(">IBQI", wire.MAGIC, wire.REQ_READ, 0,
                              wire.MAX_PAYLOAD + 1))
        with pytest.raises(wire.ProtocolError, match="oversized"):
            wire.recv_request(c)

    def test_eof_mid_message(self, pair):
        c, s = pair
        s.sendall(b"\x52")
        s.close()
        with pytest.raises(wire.ProtocolError, match="closed"):
            wire.recv_request(c)


class TestResponses:
    def test_payload_roundtrip(self, pair):
        c, s = pair
        wire.send_response(s, payload=b"data-bytes")
        assert wire.recv_response(c) == b"data-bytes"

    def test_empty_payload(self, pair):
        c, s = pair
        wire.send_response(s)
        assert wire.recv_response(c) == b""

    def test_error_raises_with_message(self, pair):
        c, s = pair
        wire.send_response(s, error="disk on fire")
        with pytest.raises(wire.ProtocolError, match="disk on fire"):
            wire.recv_response(c)
