"""Tests for the NBD-style block server and client."""

import threading

import pytest

from repro.errors import ReadOnlyImageError
from repro.imagefmt.qcow2 import Qcow2Image
from repro.imagefmt.raw import RawImage
from repro.remote import BlockServer, RemoteImage, parse_url
from repro.remote.protocol import ProtocolError
from repro.units import KiB, MiB

from tests.conftest import pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def served_base(tmp_path, small_base):
    base = RawImage.open(small_base)
    with BlockServer() as server:
        server.add_export("base", base)
        yield server, base
    base.close()


class TestUrlParsing:
    def test_roundtrip(self):
        host, port, export = parse_url("nbd://10.0.0.1:9000/images/a")
        assert (host, port, export) == ("10.0.0.1", 9000, "images/a")

    def test_rejects_garbage(self):
        from repro.errors import InvalidImageError

        for bad in ("http://x/y", "nbd://hostonly/", "nbd://h:x/e"):
            with pytest.raises(InvalidImageError):
                parse_url(bad)


class TestClientServer:
    def test_size_from_handshake(self, served_base):
        server, base = served_base
        with RemoteImage.connect(server.url("base")) as img:
            assert img.size == base.size

    def test_reads_match_local(self, served_base):
        server, _ = served_base
        with RemoteImage.connect(server.url("base")) as img:
            assert img.read(0, 1000) == pattern(0, 1000)
            assert img.read(MiB + 7, 4097) == pattern(MiB + 7, 4097)

    def test_large_read_chunked(self, served_base):
        server, _ = served_base
        with RemoteImage.connect(server.url("base")) as img:
            big = img.read(0, 4 * MiB)  # spans no chunk boundary here,
            assert big == pattern(0, 4 * MiB)

    def test_unknown_export_refused(self, served_base):
        server, _ = served_base
        with pytest.raises(ProtocolError):
            RemoteImage.connect(server.url("nope"))

    def test_read_only_export_rejects_writes(self, served_base):
        server, _ = served_base
        with RemoteImage.connect(server.url("base"),
                                 read_only=False) as img:
            with pytest.raises(ProtocolError, match="read-only"):
                img.write(0, b"x")
            # The connection survives the error.
            assert img.read(0, 8) == pattern(0, 8)

    def test_writable_export(self, tmp_path):
        p = str(tmp_path / "rw.raw")
        backing = RawImage.create(p, MiB)
        with BlockServer() as server:
            server.add_export("rw", backing, writable=True)
            with RemoteImage.connect(server.url("rw"),
                                     read_only=False) as img:
                img.write(100, b"remote write")
                assert img.read(100, 12) == b"remote write"
                img.flush()
        backing.close()
        with RawImage.open(p) as check:
            assert check.read(100, 12) == b"remote write"

    def test_concurrent_clients(self, served_base):
        server, _ = served_base
        errors = []

        def reader(tag):
            try:
                with RemoteImage.connect(server.url("base")) as img:
                    for i in range(20):
                        off = (tag * 13 + i) * 4096
                        assert img.read(off, 4096) == pattern(off, 4096)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(t,))
                   for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert server.export_stats("base").connections == 6

    def test_duplicate_export_rejected(self, served_base):
        server, base = served_base
        with pytest.raises(ValueError):
            server.add_export("base", base)


class TestRemoteBackingChain:
    def test_cache_chain_over_the_wire(self, tmp_path, small_base):
        """The paper's full setup with a real network in the middle:
        remote base <- local cache <- local CoW."""
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("centos", base)
            url = server.url("centos")
            cache_p = str(tmp_path / "cache.qcow2")
            cow_p = str(tmp_path / "cow.qcow2")
            cache = Qcow2Image.create(
                cache_p, backing_file=url, cluster_size=512,
                cache_quota=2 * MiB)
            cache.close()
            cow = Qcow2Image.create(cow_p, backing_file=cache_p,
                                    backing_format="qcow2")
            with cow:
                # Cold boot over the socket.
                assert cow.read(0, 256 * KiB) == pattern(0, 256 * KiB)
            cold_bytes = server.export_stats("centos").bytes_read
            assert cold_bytes >= 256 * KiB

            # Warm boot: a new CoW on the warm cache — no server reads.
            cow2 = Qcow2Image.create(str(tmp_path / "cow2.qcow2"),
                                     backing_file=cache_p,
                                     backing_format="qcow2")
            with cow2:
                assert cow2.read(0, 256 * KiB) == pattern(0, 256 * KiB)
            assert server.export_stats("centos").bytes_read == \
                cold_bytes
        base.close()

    def test_remote_url_survives_in_header(self, tmp_path, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("b", base)
            url = server.url("b")
            p = str(tmp_path / "c.qcow2")
            Qcow2Image.create(p, backing_file=url).close()
            header = Qcow2Image.peek_header(p)
            assert header.backing_file == url
            # Reopening reconnects through the URL.
            with Qcow2Image.open(p, read_only=False) as img:
                assert img.backing.format_name == "remote"
                assert img.read(0, 64) == pattern(0, 64)
        base.close()
