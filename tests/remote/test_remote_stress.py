"""Opt-in concurrency soaks for the remote datapath.

The deterministic regression tests in ``test_concurrency_fixes.py``
pin each fixed race with a scripted interleaving; these soaks hammer
the same seams with real nondeterminism — many threads, thousands of
iterations, wall-clock long enough that a reintroduced race has a
fighting chance of firing.  They are too slow and too probabilistic
for tier-1, so they only run under ``REPRO_REMOTE_STRESS=1``:

    REPRO_REMOTE_STRESS=1 PYTHONPATH=src pytest -m remote_stress
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.imagefmt.raw import RawImage
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.units import KiB, MiB

from tests.conftest import pattern

STRESS = os.environ.get("REPRO_REMOTE_STRESS") == "1"

pytestmark = [
    pytest.mark.remote_stress,
    pytest.mark.skipif(not STRESS,
                       reason="set REPRO_REMOTE_STRESS=1 for the soaks"),
    pytest.mark.filterwarnings("ignore::ResourceWarning"),
]

FAST_RETRY = dict(max_retries=2, backoff_base=0.01, backoff_max=0.05)

ENGINES = [pytest.param(False, id="eventloop"),
           pytest.param(True, id="threaded")]


@pytest.mark.timeout(300)
@pytest.mark.parametrize("threaded", ENGINES)
def test_injector_swap_storm(small_base, threaded):
    """Main thread toggles the fault injector between a delaying one
    and ``None`` as fast as it can while reader threads keep traffic
    flowing.  The TOCTOU fix means no request may ever observe the
    injector half-swapped (the pre-fix symptom: AttributeError in a
    worker, surfacing as a client-visible I/O error)."""
    duration = 8.0
    n_readers = 4
    base = RawImage.open(small_base)
    failures: list[BaseException] = []
    stop = threading.Event()

    with BlockServer(threaded=threaded) as server:
        server.add_export("base", base)
        url = server.url("base")

        def reader(i: int) -> None:
            try:
                with RemoteImage.connect(url, depth=4,
                                         **FAST_RETRY) as img:
                    while not stop.is_set():
                        off = ((i * 31) % 60) * 64 * KiB
                        if img.read(off, 4 * KiB) != pattern(off, 4 * KiB):
                            raise AssertionError("corrupt read")
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(n_readers)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + duration
        swaps = 0
        while time.monotonic() < deadline:
            server.set_fault_injector(
                FaultInjector(delay_rate=1.0, delay_seconds=0.001))
            server.set_fault_injector(None)
            swaps += 2
        stop.set()
        for t in threads:
            t.join(timeout=60)
        snap = server.export_stats("base").summary()
    base.close()
    assert not failures, failures
    assert swaps > 100
    assert snap["errors"] == 0


@pytest.mark.timeout(300)
@pytest.mark.parametrize("threaded", ENGINES)
def test_health_scrape_storm(tmp_path, threaded):
    """Scrape ``health()`` continuously while exports are added and
    traffic flows; every scrape must return a coherent snapshot and
    never raise."""
    duration = 6.0
    n_exports = 40
    failures: list[BaseException] = []
    stop = threading.Event()

    with BlockServer(threaded=threaded) as server:
        def scraper() -> None:
            try:
                while not stop.is_set():
                    h = server.health()
                    assert h["status"] in ("ok", "degraded")
                    for entry in h["exports"].values():
                        assert "open" in entry
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        scrapers = [threading.Thread(target=scraper) for _ in range(3)]
        for t in scrapers:
            t.start()
        deadline = time.monotonic() + duration
        i = 0
        while time.monotonic() < deadline and i < n_exports:
            p = str(tmp_path / f"img{i}.raw")
            RawImage.create(p, 256 * KiB).close()
            server.add_export_path(f"img{i}", p)
            with RemoteImage.connect(server.url(f"img{i}")) as img:
                img.read(0, 4 * KiB)
            i += 1
        stop.set()
        for t in scrapers:
            t.join(timeout=60)
        final = server.health()
    assert not failures, failures
    assert len(final["exports"]) == i


@pytest.mark.timeout(300)
@pytest.mark.parametrize("threaded", ENGINES)
def test_summary_reconciles_under_load(small_base, threaded):
    """``summary()`` snapshots taken while clients hammer the export
    must always reconcile internally: ops and bytes move together, and
    no counter ever regresses between consecutive snapshots."""
    duration = 6.0
    n_clients = 3
    base = RawImage.open(small_base)
    failures: list[BaseException] = []
    stop = threading.Event()

    with BlockServer(threaded=threaded) as server:
        server.add_export("base", base)
        url = server.url("base")

        def client(i: int) -> None:
            try:
                with RemoteImage.connect(url, **FAST_RETRY) as img:
                    while not stop.is_set():
                        img.read((i % 8) * 64 * KiB, 4 * KiB)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        prev_ops = prev_bytes = 0
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            snap = server.export_stats("base").summary()
            assert snap["read_ops"] >= prev_ops
            assert snap["bytes_read"] >= prev_bytes
            # A torn snapshot shows ops without their bytes (or the
            # reverse); every op in this workload moves exactly 4 KiB.
            assert snap["bytes_read"] == snap["read_ops"] * 4 * KiB
            prev_ops, prev_bytes = snap["read_ops"], snap["bytes_read"]
        stop.set()
        for t in threads:
            t.join(timeout=60)
    base.close()
    assert not failures, failures
    assert prev_ops > 0


@pytest.mark.timeout(600)
def test_connection_storm_eventloop(small_base):
    """Churn 300 short-lived connections through the event loop in
    waves while a handful of long-lived clients stream continuously;
    everything completes, every byte is right, nothing leaks."""
    waves, per_wave = 6, 50
    base = RawImage.open(small_base)
    failures: list[BaseException] = []
    stop = threading.Event()

    with BlockServer(workers=8) as server:
        server.add_export("base", base)
        url = server.url("base")

        def streamer(i: int) -> None:
            try:
                with RemoteImage.connect(url, depth=4) as img:
                    while not stop.is_set():
                        off = (i % 4) * MiB
                        if img.read(off, 64 * KiB) != \
                                pattern(off, 64 * KiB):
                            raise AssertionError("corrupt stream read")
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        def burst(i: int) -> None:
            try:
                off = (i % 16) * 64 * KiB
                with RemoteImage.connect(url) as img:
                    if img.read(off, 4 * KiB) != pattern(off, 4 * KiB):
                        raise AssertionError("corrupt burst read")
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        streams = [threading.Thread(target=streamer, args=(i,))
                   for i in range(3)]
        for t in streams:
            t.start()
        total = 0
        for w in range(waves):
            threads = [threading.Thread(target=burst,
                                        args=(w * per_wave + i,))
                       for i in range(per_wave)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            total += per_wave
        stop.set()
        for t in streams:
            t.join(timeout=60)
        snap = server.export_stats("base").summary()
    base.close()
    assert not failures, failures
    assert snap["connections"] == total + len(streams)
    assert snap["errors"] == 0
    assert snap["bytes_copied"] == 0
