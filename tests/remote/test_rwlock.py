"""Semantics of the server's reader-writer lock."""

import threading
import time

import pytest

from repro.remote.rwlock import RWLock


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3)

        def reader():
            with lock.read_locked():
                inside.wait(timeout=5)  # needs all 3 in at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = RWLock()
        lock.acquire_write()
        assert not lock.acquire_read(timeout=0.05)
        lock.release_write()
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_writers_exclude_each_other(self):
        lock = RWLock()
        lock.acquire_write()
        assert not lock.acquire_write(timeout=0.05)
        lock.release_write()
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_reader_excludes_writer(self):
        lock = RWLock()
        lock.acquire_read()
        assert not lock.acquire_write(timeout=0.05)
        lock.release_read()
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_writer_preference(self):
        """A waiting writer blocks new readers (no writer starvation)."""
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            time.sleep(0.05)
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)  # writer is now queued
        assert not lock.acquire_read(timeout=0.05)  # reader must wait
        lock.release_read()
        assert got_write.wait(timeout=5)
        t.join(timeout=5)
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_writer_timeout_wakes_queued_readers(self):
        """A timed-out writer must re-notify readers queued behind it
        (writer preference), not leave them blocked until some
        unrelated release happens."""
        lock = RWLock()
        lock.acquire_read()  # keeps the writer from ever acquiring
        reader_got = threading.Event()

        def writer():
            assert not lock.acquire_write(timeout=0.2)

        def late_reader():
            if lock.acquire_read(timeout=10):
                reader_got.set()
                lock.release_read()

        wt = threading.Thread(target=writer)
        wt.start()
        time.sleep(0.05)  # writer is now queued
        rt = threading.Thread(target=late_reader)
        rt.start()
        time.sleep(0.05)  # reader is now queued behind the writer
        wt.join(timeout=5)
        assert not wt.is_alive()
        # Well before the reader's own 10 s deadline: it must have
        # been woken by the timed-out writer's notify.
        assert reader_got.wait(timeout=2)
        rt.join(timeout=5)
        lock.release_read()

    def test_release_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_context_managers(self):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        # Fully released afterwards:
        assert lock.acquire_write(timeout=0.5)
        lock.release_write()
