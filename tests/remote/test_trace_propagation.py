"""Trace-context propagation over wire protocol v3.

Covers the negotiation matrix (context-enabled peers against
context-less v2 and v1 peers), reconnect stability of propagated ids,
the v3 frame codec itself, and the cross-process merge: a storage node
in a real child process records its own trace, and the merged
client+server boot report must show every served ``export.read`` span
parented under the client span that issued it, with byte attribution
reconciling exactly with the client driver's own accounting.
"""

import os
import socket
import subprocess
import sys
import textwrap

import pytest

from repro.errors import RemoteError
from repro.imagefmt.raw import RawImage
from repro.metrics.boot_report import build_report, merge_traces
from repro.metrics.tracing import TRACER, ListSink, Tracer, load_trace
from repro.remote import BlockServer, FaultInjector, RemoteImage
from repro.remote import protocol as wire
from repro.units import KiB

from tests.conftest import pattern

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

FAST_RETRY = dict(max_retries=3, backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(autouse=True)
def clean_tracer():
    TRACER.disable()
    yield
    TRACER.disable()


def export_spans(sink):
    return [r for r in sink.records if r["type"] == "span"
            and r["name"].startswith("export.")]


class TestWireCodec:
    def test_trace_ctx_roundtrip(self):
        blob = wire.encode_trace_ctx(("t0001", "s000042"))
        assert wire.decode_trace_ctx(blob) == ("t0001", "s000042")
        assert wire.decode_trace_ctx(b"") is None

    def test_trace_ctx_malformed_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_trace_ctx(b"no-separator")
        with pytest.raises(wire.ProtocolError):
            wire.decode_trace_ctx(b"\xfftid\x00sid")

    def test_trace_ctx_oversize_rejected(self):
        with pytest.raises(ValueError):
            wire.encode_trace_ctx(("t" * 600, "s1"))

    def test_request_frame_roundtrip_with_and_without_ctx(self):
        a, b = socket.socketpair()
        try:
            for ctx in (("t0007", "s000009"), None):
                req = wire.Request(wire.REQ_READ, offset=123,
                                   length=456, trace_ctx=ctx)
                wire.send_request_v3(a, 42, req)
                tag, got = wire.recv_request_v3(b)
                assert tag == 42
                assert got.offset == 123 and got.length == 456
                assert got.trace_ctx == ctx
        finally:
            a.close()
            b.close()


class TestNegotiationMatrix:
    def test_context_client_against_v2_server(self, small_base):
        """A v3-capable, tracing-enabled client against a v2-only
        server: transparent clamp, no context on the wire, no
        errors."""
        sink = ListSink()
        TRACER.enable(sink)
        base = RawImage.open(small_base)
        with BlockServer(max_protocol=2) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.VERSION_2
                with TRACER.span("client.op"):
                    assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
        assert export_spans(sink) == []
        base.close()

    def test_context_client_against_v1_server(self, small_base):
        sink = ListSink()
        TRACER.enable(sink)
        base = RawImage.open(small_base)
        with BlockServer(max_protocol=1) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version == wire.VERSION_1
                with TRACER.span("client.op"):
                    assert img.read(0, 4096) == pattern(0, 4096)
        assert export_spans(sink) == []
        base.close()

    def test_contextless_client_against_context_server(self, small_base):
        """v3 negotiated but the client has no span open: requests
        carry an empty context and the server opens no export
        spans."""
        sink = ListSink()
        TRACER.enable(sink)
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version >= wire.VERSION_3
                assert img.read(0, 4096) == pattern(0, 4096)
        assert export_spans(sink) == []
        base.close()

    def test_tracing_disabled_on_v3_is_clean(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base")) as img:
                assert img.protocol_version >= wire.VERSION_3
                assert img.read(0, 64 * KiB) == pattern(0, 64 * KiB)
        base.close()

    def test_pinned_v3_against_v2_server_raises(self, small_base):
        base = RawImage.open(small_base)
        with BlockServer(max_protocol=2) as server:
            server.add_export("base", base)
            with pytest.raises((wire.ProtocolError, RemoteError)):
                RemoteImage.connect(server.url("base"), protocol=3,
                                    **FAST_RETRY)
        base.close()


class TestPropagationEndToEnd:
    def test_served_spans_parent_under_client_span(self, small_base):
        sink = ListSink()
        TRACER.enable(sink)
        base = RawImage.open(small_base, read_only=False)
        with BlockServer() as server:
            server.add_export("base", base, writable=True)
            with RemoteImage.connect(server.url("base"),
                                     read_only=False) as img:
                with TRACER.span("client.op") as op:
                    img.read(0, 128 * KiB)
                    img.write(0, pattern(0, 4096))
                client_trace = op.trace_id
                client_span = op.span_id
        spans = export_spans(sink)
        reads = [s for s in spans if s["name"] == "export.read"]
        writes = [s for s in spans if s["name"] == "export.write"]
        assert reads and writes
        for span in spans:
            assert span["trace_id"] == client_trace
            assert span["parent_id"] == client_span
            assert span["attrs"]["propagated"] is True
            assert span["attrs"]["export"] == "base"
            assert "conn" in span["attrs"]
        # Byte attribution reconciles exactly with the client driver's
        # own accounting (chunking may split one read into several
        # served spans; the totals must still match).
        assert sum(s["attrs"]["length"] for s in reads) == 128 * KiB
        assert sum(s["attrs"]["length"] for s in writes) == 4096
        base.close()

    def test_reconnect_keeps_trace_ids_stable(self, small_base):
        """A drop mid-window forces reconnect-and-replay; the replayed
        requests must still carry the same propagated trace id."""
        sink = ListSink()
        TRACER.enable(sink)
        base = RawImage.open(small_base)
        fi = FaultInjector()
        with BlockServer(fault_injector=fi) as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     **FAST_RETRY) as img:
                with TRACER.span("client.op") as op:
                    img.read(0, 4096)
                    fi.inject("drop")
                    img.read(8192, 4096)
                assert img.transport_stats.reconnects >= 1
                client_trace = op.trace_id
        spans = export_spans(sink)
        assert spans
        assert {s["trace_id"] for s in spans} == {client_trace}
        base.close()

    def test_batch_ctx_spans_one_parent(self, small_base):
        sink = ListSink()
        TRACER.enable(sink)
        base = RawImage.open(small_base)
        with BlockServer() as server:
            server.add_export("base", base)
            with RemoteImage.connect(server.url("base"),
                                     depth=4) as img:
                with TRACER.span("client.batch") as op:
                    img.read_batch([(0, 4096), (8192, 4096),
                                    (64 * KiB, 4096)])
        spans = export_spans(sink)
        assert len(spans) >= 3
        assert {s["parent_id"] for s in spans} == {op.span_id}
        base.close()


class TestMergeTraces:
    def _two_process_traces(self, *, id_prefix=""):
        """Simulate a client and a storage node with separate tracers
        (separate processes in miniature: both count ids from 1)."""
        client, server = Tracer(), Tracer()
        client_sink, server_sink = ListSink(), ListSink()
        client.enable(client_sink)
        server.enable(server_sink, id_prefix=id_prefix or None)
        # A server-local span first, so local ids collide with the
        # client's if unprefixed.
        with server.span("node.startup"):
            pass
        with client.span("client.op") as op:
            ctx = client.propagation_context()
            assert ctx == (op.trace_id, op.span_id)
            with server.propagated_span("export.read", ctx[0], ctx[1],
                                        export="base", conn=0,
                                        offset=0, length=4096):
                server.event("block.read", layer="base",
                             path="/img/base.raw", offset=0,
                             length=4096)
        client.disable()
        server.disable()
        return client_sink.records, server_sink.records

    def test_colliding_ids_rewritten_and_linked(self):
        primary, secondary = self._two_process_traces()
        merged = merge_traces(primary, secondary)
        span_ids = [r["span_id"] for r in merged
                    if r["type"] == "span"]
        assert len(span_ids) == len(set(span_ids))
        report = build_report(merged)
        served = report.served["base"]
        assert served.linked == 1 and served.orphaned == 0
        # The propagated span and its nested event stay in the
        # client's trace.
        exp = next(r for r in merged if r.get("name") == "export.read")
        ev = next(r for r in merged if r.get("name") == "block.read")
        client_op = next(r for r in merged
                         if r.get("name") == "client.op")
        assert exp["trace_id"] == client_op["trace_id"]
        assert exp["parent_id"] == client_op["span_id"]
        assert ev["trace_id"] == client_op["trace_id"]
        assert ev["parent_id"] == exp["span_id"]
        # The server-local span was rewritten out of collision.
        local = next(r for r in merged
                     if r.get("name") == "node.startup")
        assert local["span_id"].startswith("peer-")
        assert local["trace_id"] != client_op["trace_id"]

    def test_prefixed_peer_merges_unchanged(self):
        primary, secondary = self._two_process_traces(id_prefix="srv-")
        merged = merge_traces(primary, secondary)
        assert merged[len(primary):] == secondary

    def test_merged_report_equals_sum_of_parts(self):
        primary, secondary = self._two_process_traces()
        merged_report = build_report(merge_traces(primary, secondary))
        part_a = build_report(primary)
        part_b = build_report(secondary)
        assert merged_report.record_count \
            == part_a.record_count + part_b.record_count
        assert merged_report.layer_bytes("base") \
            == part_a.layer_bytes("base") + part_b.layer_bytes("base")
        served = merged_report.served["base"]
        assert served.bytes_read \
            == part_b.served["base"].bytes_read
        assert served.orphaned == 0

    def test_unmerged_server_trace_reports_orphans(self):
        server = Tracer()
        sink = ListSink()
        server.enable(sink)
        with server.propagated_span("export.read", "t0001", "s000001",
                                    export="base", conn=0, offset=0,
                                    length=4096):
            pass
        server.disable()
        report = build_report(sink.records)
        assert report.served["base"].orphaned == 1
        assert report.served["base"].linked == 0


_NODE_SCRIPT = textwrap.dedent("""\
    import sys
    from repro.imagefmt.raw import RawImage
    from repro.metrics.tracing import TRACER, JsonlSink
    from repro.remote import BlockServer

    base_path, trace_path = sys.argv[1], sys.argv[2]
    TRACER.enable(JsonlSink(trace_path))
    base = RawImage.open(base_path)
    server = BlockServer()
    server.add_export("base", base)
    print(server.port, flush=True)
    sys.stdin.readline()  # parent closes stdin to stop us
    server.close()
    base.close()
    TRACER.disable()
""")


class TestCrossProcessMerge:
    def test_merged_report_links_every_served_span(self, small_base,
                                                   tmp_path):
        """The acceptance check: storage node in a real child process,
        one trace per process, merged report shows every served span
        under its client span and reconciles byte-for-byte with the
        client driver's stats."""
        node_trace = str(tmp_path / "node.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", _NODE_SCRIPT, small_base,
             node_trace],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=env, text=True)
        try:
            port = int(proc.stdout.readline())
            sink = ListSink()
            TRACER.enable(sink)
            with RemoteImage.connect(
                    f"nbd://127.0.0.1:{port}/base") as img:
                assert img.protocol_version >= wire.VERSION_3
                with TRACER.span("client.op"):
                    img.read(0, 256 * KiB)
                    img.read(512 * KiB, 64 * KiB)
                client_bytes = img.stats.bytes_read
            TRACER.disable()
        finally:
            proc.stdin.close()
            proc.wait(timeout=10)
        report = build_report(
            merge_traces(sink.records, load_trace(node_trace)))
        served = report.served["base"]
        assert served.orphaned == 0 and served.linked == served.spans
        assert served.spans >= 2
        assert served.bytes_read == client_bytes == 320 * KiB
