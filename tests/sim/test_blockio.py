"""Tests for SimImage: the in-memory image model must reproduce the
file-backed driver's allocation, CoR, and quota behaviour."""

import pytest

from repro.errors import OutOfBoundsError
from repro.sim.blockio import (
    IORequest,
    Location,
    SimImage,
    initial_metadata_bytes,
    sim_cache_chain,
)
from repro.units import KiB, MiB

NFS = Location("nfs", "storage", "base.raw")
CDISK = Location("compute-disk", "node00", "cache.qcow2")
CMEM = Location("compute-mem", "node00", "cow.qcow2")

SIZE = 16 * MiB


def make_chain(quota=4 * MiB, cache_cluster_bits=9):
    base = SimImage("base", SIZE, NFS, preallocated=True)
    cow, cache = sim_cache_chain(
        base, cache_location=CDISK, cow_location=CMEM, quota=quota,
        cache_cluster_bits=cache_cluster_bits)
    return cow, cache, base


def total_bytes(plan, *, kind=None, location_kind=None):
    out = 0
    for req in plan:
        if kind and req.kind != kind:
            continue
        if location_kind and req.location.kind != location_kind:
            continue
        out += req.nbytes
    return out


class TestPreallocatedBase:
    def test_reads_hit_own_location(self):
        base = SimImage("base", SIZE, NFS, preallocated=True)
        plan = []
        base.read(100, 1000, plan)
        assert plan == [IORequest(NFS, "read", 1000,
                                  stream="base.raw", offset=100)]

    def test_bounds(self):
        base = SimImage("base", SIZE, NFS, preallocated=True)
        with pytest.raises(OutOfBoundsError):
            base.read(SIZE - 10, 20, [])

    def test_zero_length_no_plan(self):
        base = SimImage("base", SIZE, NFS, preallocated=True)
        plan = []
        base.read(0, 0, plan)
        assert plan == []


class TestCopyOnRead:
    def test_cold_read_fetches_and_populates(self):
        cow, cache, base = make_chain()
        plan = []
        cow.read(0, 4 * KiB, plan)
        # NFS fetch of the covering clusters + population write to the
        # cache's local disk, plus one metadata update (L2/header).
        assert total_bytes(plan, location_kind="nfs") == 4 * KiB
        assert total_bytes(plan, kind="write",
                           location_kind="compute-disk") == \
            4 * KiB + cache.cluster_size
        meta_writes = [r for r in plan if r.stream.endswith(".meta")]
        assert len(meta_writes) == 1
        assert cache.stats.cor_bytes_written == 4 * KiB

    def test_warm_read_stays_local(self):
        cow, cache, base = make_chain()
        cow.read(0, 4 * KiB, [])
        plan = []
        cow.read(0, 4 * KiB, plan)
        assert total_bytes(plan, location_kind="nfs") == 0
        assert total_bytes(plan, kind="read",
                           location_kind="compute-disk") == 4 * KiB
        assert cache.stats.cache_hit_bytes == 4 * KiB

    def test_cluster_alignment_amplifies_64k(self):
        """Figure 9: a small read on a 64 KiB-cluster cache pulls the
        whole cluster from the base."""
        cow, cache, base = make_chain(cache_cluster_bits=16)
        plan = []
        cow.read(100 * KiB, 512, plan)
        assert total_bytes(plan, location_kind="nfs") == 64 * KiB

    def test_512_cluster_minimal_amplification(self):
        cow, cache, base = make_chain(cache_cluster_bits=9)
        plan = []
        cow.read(100 * KiB + 7, 100, plan)
        assert total_bytes(plan, location_kind="nfs") == 512

    def test_partial_overlap_fetches_only_gaps(self):
        cow, cache, base = make_chain()
        cow.read(0, 8 * KiB, [])
        plan = []
        cow.read(4 * KiB, 8 * KiB, plan)   # first half warm
        assert total_bytes(plan, location_kind="nfs") == 4 * KiB

    def test_phys_cursor_makes_hits_sequential(self):
        cow, cache, base = make_chain()
        cow.read(0, 8 * KiB, [])
        cow.read(1 * MiB, 8 * KiB, [])
        plan = []
        cow.read(0, 8 * KiB, plan)
        cow.read(1 * MiB, 8 * KiB, plan)
        disk_reads = [r for r in plan if r.kind == "read"
                      and r.location.kind == "compute-disk"]
        # Hits advance monotonically: replay order == population order
        # means physically sequential reads.
        assert disk_reads[0].offset < disk_reads[1].offset


class TestQuota:
    def test_quota_stops_population(self):
        quota = 256 * KiB
        cow, cache, base = make_chain(quota=quota)
        plan = []
        cow.read(0, 2 * MiB, plan)
        assert not cache.cor_enabled
        assert cache.cache_runtime.cor.space_errors == 1
        assert cache.physical_bytes <= quota
        # The guest still got its data (reads pass through to NFS).
        assert total_bytes(plan, location_kind="nfs") >= 2 * MiB

    def test_subsequent_reads_skip_cache(self):
        cow, cache, base = make_chain(quota=64 * KiB)
        cow.read(0, MiB, [])
        before = cache.physical_bytes
        plan = []
        cow.read(2 * MiB, 64 * KiB, plan)
        assert cache.physical_bytes == before
        assert total_bytes(plan, kind="write") == 0

    def test_metadata_counted_against_quota(self):
        cow, cache, base = make_chain(quota=4 * MiB)
        meta0 = cache.physical_bytes
        assert meta0 == initial_metadata_bytes(SIZE, 9, 4 * MiB)
        cow.read(0, MiB, [])
        # data + L2 tables on top of the initial metadata
        assert cache.physical_bytes > meta0 + MiB


class TestGuestWrites:
    def test_writes_stay_in_cow(self):
        cow, cache, base = make_chain()
        plan = []
        cow.write(0, 64 * KiB, plan)   # exactly one CoW cluster
        assert cache.stats.bytes_written == 0
        assert total_bytes(plan, kind="write",
                           location_kind="compute-mem") == 64 * KiB
        assert total_bytes(plan, location_kind="nfs") == 0  # no fill

    def test_partial_write_fills_from_backing(self):
        cow, cache, base = make_chain()
        plan = []
        cow.write(10 * KiB, 512, plan)
        # One 64 KiB CoW cluster is filled through cache -> base.
        assert total_bytes(plan, location_kind="nfs") >= 512
        assert cow.physical_bytes > initial_metadata_bytes(SIZE, 16)

    def test_overwrite_no_new_allocation(self):
        cow, cache, base = make_chain()
        cow.write(0, 64 * KiB, [])
        phys = cow.physical_bytes
        cow.write(0, 4 * KiB, [])
        assert cow.physical_bytes == phys

    def test_write_then_read_is_local(self):
        cow, cache, base = make_chain()
        cow.write(0, 64 * KiB, [])
        plan = []
        cow.read(0, 64 * KiB, plan)
        assert total_bytes(plan, location_kind="nfs") == 0


class TestChainConstruction:
    def test_chain_shape(self):
        cow, cache, base = make_chain()
        assert cow.chain_depth() == 3
        assert cache.is_cache
        assert not cow.is_cache
        assert cache.cluster_size == 512
        assert cow.cluster_size == 64 * KiB

    def test_existing_cache_reused(self):
        cow1, cache, base = make_chain()
        cow1.read(0, MiB, [])
        cow2, cache2 = sim_cache_chain(
            base, cache_location=CDISK, cow_location=CMEM,
            quota=4 * MiB, existing_cache=cache, vm_name="vm2")
        assert cache2 is cache
        plan = []
        cow2.read(0, MiB, plan)
        assert total_bytes(plan, location_kind="nfs") == 0

    def test_cache_requires_backing(self):
        with pytest.raises(ValueError):
            SimImage("c", SIZE, CDISK, cache_quota=MiB)


class TestMetadataAgreesWithRealFormat:
    """The sim's metadata math must equal the real driver's on-disk
    footprint — same code path, same numbers."""

    @pytest.mark.parametrize("cluster_bits,quota", [
        (9, 1 * MiB), (9, 0), (12, 0), (16, 0), (16, 8 * MiB)])
    def test_initial_size_matches_real_create(self, tmp_path,
                                              cluster_bits, quota):
        import os

        from repro.imagefmt.qcow2 import Qcow2Image
        from repro.imagefmt.raw import RawImage

        base_p = str(tmp_path / "b.raw")
        RawImage.create(base_p, SIZE).close()
        p = str(tmp_path / f"img{cluster_bits}-{quota}.qcow2")
        img = Qcow2Image.create(
            p, SIZE if not quota else None,
            backing_file=base_p if quota else None,
            cluster_size=1 << cluster_bits,
            cache_quota=quota)
        img.close()
        assert os.path.getsize(p) == \
            initial_metadata_bytes(SIZE, cluster_bits, quota)
