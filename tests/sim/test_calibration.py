"""Sanity tests on the testbed calibration (provenance-level claims)."""

import pytest

from repro.sim import calibration as cal
from repro.units import GiB, KiB, MiB


class TestNetworks:
    def test_registry(self):
        assert set(cal.NETWORKS) == {"1gbe", "ib"}

    def test_ib_much_faster_than_gbe(self):
        """The paper's premium vs commodity gap: ~30x bandwidth."""
        ratio = cal.IB_32.bandwidth / cal.GBE_1.bandwidth
        assert 8 < ratio < 40

    def test_gbe_under_line_rate(self):
        """Effective 1GbE throughput below the 125 MB/s line rate."""
        assert cal.GBE_1.bandwidth < 125_000_000
        assert cal.GBE_1.bandwidth > 80 * MiB

    def test_rtt(self):
        assert cal.GBE_1.rtt == pytest.approx(2 * cal.GBE_1.latency)
        assert cal.IB_32.latency < cal.GBE_1.latency


class TestDisks:
    def test_random_access_era_appropriate(self):
        """7200-RPM disks: ~100–250 random IOPS per spindle."""
        iops = 1.0 / cal.STORAGE_RAID0.seek_time
        assert 100 <= iops <= 250

    def test_streaming_far_cheaper_than_seeking(self):
        for p in (cal.STORAGE_RAID0, cal.COMPUTE_DISK):
            assert p.sequential_gap < p.seek_time / 10

    def test_nfs_rwsize_matches_paper(self):
        """§5: 'We have tuned the NFS rwsize to 64KB'."""
        assert cal.NFS_RWSIZE == 64 * KiB

    def test_page_cache_within_node_memory(self):
        """§5: 24 GB nodes — the page cache fits with OS headroom."""
        assert cal.STORAGE_PAGE_CACHE_BYTES < cal.NODE_MEMORY.capacity
        assert cal.NODE_MEMORY.capacity == 24 * GiB


class TestAnchors:
    def test_single_boot_near_paper_value(self):
        """Figure 2 left edge: one CentOS boot ≈ 35 s (we accept a
        ±35 % band; shapes, not digits)."""
        from repro.experiments.scaling import single_vm_reference

        boot = single_vm_reference("1gbe")
        assert 23 < boot < 48

    def test_warm_cache_boot_beats_saturated_qcow2(self):
        """The headline: a warm-cache boot at full cluster scale must
        stay near the single-VM figure (asserted at 8 nodes here, 64
        in the benchmarks)."""
        from repro.experiments.common import (
            make_cloud,
            one_vm_per_node_wave,
        )

        cloud, vmis = make_cloud(n_compute=8, network="1gbe",
                                 cache_mode="compute-disk")
        one_vm_per_node_wave(cloud, vmis, 8)
        cloud.shutdown_all()
        warm = one_vm_per_node_wave(cloud, vmis, 8)
        from repro.experiments.scaling import single_vm_reference

        assert warm.mean_boot_time < 1.25 * single_vm_reference("1gbe")
