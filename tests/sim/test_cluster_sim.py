"""Integration tests: the simulated testbed must reproduce the paper's
qualitative results at small scale (fast profiles, few nodes)."""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.errors import SimulationError
from repro.sim.blockio import IORequest, Location, SimImage, sim_cache_chain
from repro.sim.cluster_sim import BootJob, Testbed, boot_vms
from repro.units import MiB


PROFILE = tiny_profile(vmi_size=64 * MiB, working_set=4 * MiB,
                       boot_time=3.0)
TRACE = generate_boot_trace(PROFILE, seed=5)


def plain_job(tb, i, base):
    node = tb.computes[i]
    cow = SimImage(f"vm{i}.cow", base.size,
                   tb.compute_mem_location(node, f"vm{i}.cow"),
                   backing=base)
    return BootJob(f"vm{i:02d}", node, cow, TRACE)


def warm_cache_with_trace(cache, trace):
    """Populate a cache exactly as a sample boot would (§3.2)."""
    for op in trace.reads():
        length = min(op.length, cache.size - min(op.offset, cache.size))
        if length > 0:
            cache.read(op.offset, length, [])


def cached_job(tb, i, base, quota=16 * MiB, warm_cache=None,
               cache_kind="compute-disk"):
    node = tb.computes[i]
    if cache_kind == "compute-disk":
        cache_loc = tb.compute_disk_location(node, f"vm{i}.cache")
    elif cache_kind == "compute-mem":
        cache_loc = tb.compute_mem_location(node, f"vm{i}.cache")
    else:
        cache_loc = tb.storage_mem_location(f"{base.name}.cache")
    cow, cache = sim_cache_chain(
        base,
        cache_location=cache_loc,
        cow_location=tb.compute_mem_location(node, f"vm{i}.cow"),
        quota=quota, vm_name=f"vm{i}", existing_cache=warm_cache)
    return BootJob(f"vm{i:02d}", node, cow, TRACE), cache


class TestSingleBoot:
    def test_boot_time_anatomy(self):
        tb = Testbed(n_compute=1, network="1gbe")
        base = tb.make_base("base.raw", PROFILE.vmi_size)
        res = boot_vms(tb, [plain_job(tb, 0, base)])
        boot = res.records[0].boot_time
        # At least VMM overhead + think time; bounded by a sane ceiling.
        assert boot > tb.vmm_overhead + PROFILE.cpu_time * 0.8
        assert boot < PROFILE.single_boot_time * 3

    def test_traffic_accounted(self):
        tb = Testbed(n_compute=1, network="1gbe")
        base = tb.make_base("base.raw", PROFILE.vmi_size)
        res = boot_vms(tb, [plain_job(tb, 0, base)])
        assert res.storage_nfs_bytes >= TRACE.unique_read_bytes()
        assert res.network_bytes_down == res.storage_nfs_bytes

    def test_determinism(self):
        def once():
            tb = Testbed(n_compute=2, network="1gbe")
            base = tb.make_base("base.raw", PROFILE.vmi_size)
            return boot_vms(tb, [plain_job(tb, i, base)
                                 for i in range(2)])

        a, b = once(), once()
        assert [r.boot_time for r in a.records] == \
            [r.boot_time for r in b.records]


class TestPaperShapes:
    def test_fig2_1gbe_saturates_ib_does_not(self):
        """Figure 2: boot time grows with node count on 1 GbE, stays
        flat on InfiniBand."""
        means = {}
        for net in ("1gbe", "ib"):
            for n in (1, 16):
                tb = Testbed(n_compute=n, network=net)
                base = tb.make_base("base.raw", PROFILE.vmi_size)
                res = boot_vms(tb, [plain_job(tb, i, base)
                                    for i in range(n)])
                means[(net, n)] = res.mean_boot_time
        # For the tiny profile the effect is milder than CentOS but the
        # ordering must hold.
        assert means[("1gbe", 16)] > means[("1gbe", 1)] * 1.05
        assert means[("ib", 16)] < means[("ib", 1)] * 1.15

    def test_fig3_many_vmis_hit_the_disk(self):
        """Figure 3: with one VMI the page cache absorbs re-reads; with
        k VMIs the storage disk does k times the work and boots slow
        down."""
        means = {}
        for k in (1, 8):
            tb = Testbed(n_compute=8, network="ib")
            bases = [tb.make_base(f"b{j}.raw", PROFILE.vmi_size)
                     for j in range(k)]
            res = boot_vms(tb, [plain_job(tb, i, bases[i % k])
                                for i in range(8)])
            means[k] = (res.mean_boot_time, res.storage_disk_bytes)
        assert means[8][1] == pytest.approx(8 * means[1][1], rel=0.05)
        assert means[8][0] > means[1][0]

    def test_fig11_warm_cache_beats_cold_network(self):
        """Figure 11: warm compute-disk caches make 16 simultaneous
        boots on 1 GbE as fast as a single boot."""
        n = 16
        # Cold pass on node-local caches.
        tb = Testbed(n_compute=n, network="1gbe")
        base = tb.make_base("base.raw", PROFILE.vmi_size)
        jobs = []
        for i in range(n):
            job, _cache = cached_job(tb, i, base,
                                     cache_kind="compute-mem")
            jobs.append(job)
        cold = boot_vms(tb, jobs)

        # Warm pass: fresh testbed, caches pre-populated.
        tb2 = Testbed(n_compute=n, network="1gbe")
        base2 = tb2.make_base("base.raw", PROFILE.vmi_size)
        jobs2 = []
        for i in range(n):
            job, cache = cached_job(tb2, i, base2,
                                    cache_kind="compute-disk")
            warm_cache_with_trace(cache, TRACE)
            jobs2.append(job)
        # Drop the warming traffic from the books.
        tb2.nfs.stats.bytes_served = 0
        warm = boot_vms(tb2, jobs2)

        # Single-VM reference.
        tb3 = Testbed(n_compute=1, network="1gbe")
        base3 = tb3.make_base("base.raw", PROFILE.vmi_size)
        single = boot_vms(tb3, [plain_job(tb3, 0, base3)])

        # Warm boots only touch the base for guest-write CoW fills
        # (a few partial clusters) — a rounding error next to cold.
        assert warm.storage_nfs_bytes < 0.05 * cold.storage_nfs_bytes
        assert warm.mean_boot_time < cold.mean_boot_time
        assert warm.mean_boot_time < single.mean_boot_time * 1.35

    def test_storage_mem_cache_skips_disk(self):
        """Figure 14: a warm cache in the storage node's memory removes
        the disk from the path entirely."""
        n = 4
        tb = Testbed(n_compute=n, network="ib")
        base = tb.make_base("base.raw", PROFILE.vmi_size)
        shared_cache = None
        jobs = []
        for i in range(n):
            job, cache = cached_job(tb, i, base, warm_cache=shared_cache,
                                    cache_kind="storage-mem")
            shared_cache = cache
            jobs.append(job)
        warm_cache_with_trace(shared_cache, TRACE)
        res = boot_vms(tb, jobs)
        # Boot reads come from tmpfs; the only disk touches are the
        # guest-write CoW fills outside the cached working set.
        assert res.storage_disk_bytes < res.storage_mem_read_bytes
        assert res.storage_mem_read_bytes > 0


class TestExecuteDispatch:
    def test_guest_write_to_nfs_rejected(self):
        tb = Testbed(n_compute=1)
        req = IORequest(tb.nfs_location("f"), "write", 512, "f", 0)

        def proc():
            yield from tb.execute(req, tb.computes[0])

        p = tb.env.process(proc())
        with pytest.raises(SimulationError):
            tb.env.run(until=p)

    def test_cross_node_io_rejected(self):
        tb = Testbed(n_compute=2)
        req = IORequest(
            Location("compute-disk", "node01", "f"), "read", 512, "f", 0)

        def proc():
            yield from tb.execute(req, tb.computes[0])

        p = tb.env.process(proc())
        with pytest.raises(SimulationError):
            tb.env.run(until=p)

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            Testbed(n_compute=1, network="carrier-pigeon")


class TestDeploymentTransfers:
    def test_flush_cache_to_local_disk(self):
        tb = Testbed(n_compute=1)
        base = tb.make_base("base.raw", PROFILE.vmi_size)
        job, cache = cached_job(tb, 0, base, cache_kind="compute-mem")
        boot_vms(tb, [job])
        assert cache.location.kind == "compute-mem"

        def flush():
            yield from tb.flush_cache_to_local_disk(tb.computes[0], cache)

        p = tb.env.process(flush())
        tb.env.run(until=p)
        assert cache.location.kind == "compute-disk"
        assert tb.computes[0].disk.stats.bytes_written == \
            cache.physical_bytes
        # §5.1: "the transfer to the disk takes less than one second".
        assert cache.physical_bytes / \
            tb.computes[0].disk.profile.bandwidth < 1.0

    def test_copy_cache_to_storage_memory(self):
        tb = Testbed(n_compute=1)
        base = tb.make_base("base.raw", PROFILE.vmi_size)
        job, cache = cached_job(tb, 0, base, cache_kind="compute-mem")
        boot_vms(tb, [job])

        def copy():
            yield from tb.copy_cache_to_storage_memory(cache)

        p = tb.env.process(copy())
        tb.env.run(until=p)
        assert cache.location.kind == "storage-mem"
        assert tb.up.stats.bytes_moved == cache.physical_bytes
        assert tb.storage.memory.used_bytes == cache.physical_bytes
