"""Tests for the rotational-disk and memory-store models."""

import pytest

from repro.sim.calibration import (
    COMPUTE_DISK,
    NODE_MEMORY,
    STORAGE_RAID0,
    DiskProfile,
)
from repro.sim.disk import MemoryStore, RotationalDisk
from repro.sim.engine import Environment

FAST = DiskProfile(name="t", seek_time=0.010, sequential_gap=0.001,
                   bandwidth=1_000_000.0, spindles=1, readahead=65536)


def run_reads(profile, reads):
    """reads: list of (stream, offset, nbytes); one process, in order."""
    env = Environment()
    disk = RotationalDisk(env, profile)
    times = []

    def proc():
        for stream, offset, nbytes in reads:
            t0 = env.now
            yield from disk.read(nbytes, stream=stream, offset=offset)
            times.append(env.now - t0)

    env.process(proc())
    env.run()
    return times, disk


class TestServiceTimes:
    def test_first_access_seeks(self):
        times, disk = run_reads(FAST, [("a", 0, 100_000)])
        assert times[0] == pytest.approx(0.010 + 0.1)
        assert disk.stats.seeks == 1

    def test_sequential_continuation_is_cheap(self):
        times, disk = run_reads(FAST, [
            ("a", 0, 100_000),
            ("a", 100_000, 100_000),   # continues the stream
        ])
        assert times[1] == pytest.approx(0.001 + 0.1)
        assert disk.stats.sequential_hits == 1

    def test_gap_within_readahead_still_sequential(self):
        times, _ = run_reads(FAST, [
            ("a", 0, 1000),
            ("a", 1000 + 30_000, 1000),  # 30 kB gap < 64 kB window
        ])
        assert times[1] == pytest.approx(0.001 + 0.001)

    def test_other_stream_forces_seek(self):
        times, disk = run_reads(FAST, [
            ("a", 0, 1000),
            ("b", 1000, 1000),    # different stream, same offsets
        ])
        assert times[1] == pytest.approx(0.010 + 0.001)
        assert disk.stats.seeks == 2

    def test_backward_jump_seeks(self):
        times, _ = run_reads(FAST, [
            ("a", 100_000, 1000),
            ("a", 0, 1000),
        ])
        assert times[1] == pytest.approx(0.010 + 0.001)

    def test_interleaving_destroys_locality(self):
        """Two interleaved sequential streams: every access seeks —
        the §3.3 many-VMI pathologie."""
        reads = []
        for i in range(5):
            reads.append(("a", i * 1000, 1000))
            reads.append(("b", i * 1000, 1000))
        _, disk = run_reads(FAST, reads)
        assert disk.stats.seeks == 10
        assert disk.stats.sequential_hits == 0


class TestQueueing:
    def test_spindles_parallelize(self):
        env = Environment()
        two = RotationalDisk(env, DiskProfile(
            name="r0", seek_time=0.010, sequential_gap=0.001,
            bandwidth=1e6, spindles=2, readahead=0))
        done = []

        def client(i):
            yield from two.read(10_000, stream=f"s{i}", offset=0)
            done.append(env.now)

        for i in range(4):
            env.process(client(i))
        env.run()
        # Pairs of requests run concurrently: 2 waves of 20 ms each.
        assert done[0] == pytest.approx(0.020)
        assert done[1] == pytest.approx(0.020)
        assert done[3] == pytest.approx(0.040)

    def test_queue_grows_under_load(self):
        env = Environment()
        disk = RotationalDisk(env, FAST)

        def client(i):
            yield from disk.read(1000, stream=f"s{i}", offset=0)

        for i in range(10):
            env.process(client(i))
        env.run()
        assert disk.queue.stats.max_queue_len == 9
        assert disk.stats.read_ops == 10


class TestCalibrationProfiles:
    def test_paper_hardware_shapes(self):
        # RAID-0 of two spindles (§5).
        assert STORAGE_RAID0.spindles == 2
        assert COMPUTE_DISK.spindles == 1
        # Random access costs milliseconds; streaming costs far less.
        for p in (STORAGE_RAID0, COMPUTE_DISK):
            assert p.seek_time > 10 * p.sequential_gap

    def test_storage_random_iops_anchor(self):
        """~200 IOPS/spindle era disks: seek time in [4, 10] ms."""
        assert 0.004 <= STORAGE_RAID0.seek_time <= 0.010


class TestMemoryStore:
    def test_fast_reads(self):
        env = Environment()
        mem = MemoryStore(env, NODE_MEMORY)
        done = []

        def proc():
            yield from mem.read(1_000_000)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done[0] < 0.001  # ~160 µs for 1 MB at 6 GiB/s

    def test_capacity_accounting(self):
        env = Environment()
        mem = MemoryStore(env, NODE_MEMORY)

        def proc():
            yield from mem.write(1_000_000)

        env.process(proc())
        env.run()
        assert mem.used_bytes == 1_000_000
        mem.free(400_000)
        assert mem.used_bytes == 600_000
        assert mem.available == NODE_MEMORY.capacity - 600_000
