"""Tests for the discrete-event core."""

import pytest

from repro.errors import SimDeadlockError, SimInterrupt
from repro.sim.engine import Environment


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(1.5)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [1.5, 3.5]

    def test_timeout_value(self):
        env = Environment()
        got = []

        def proc():
            v = yield env.timeout(1, value="hello")
            got.append(v)

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_ordering_is_fifo(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(0)
            order.append(tag)

        for i in range(5):
            env.process(proc(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_time(self):
        env = Environment()
        log = []

        def proc():
            for _ in range(10):
                yield env.timeout(1)
                log.append(env.now)

        env.process(proc())
        env.run(until=3.5)
        assert log == [1, 2, 3]
        assert env.now == 3.5


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def child():
            yield env.timeout(2)
            return 42

        def parent(results):
            v = yield env.process(child())
            results.append(v)

        results = []
        env.process(parent(results))
        env.run()
        assert results == [42]

    def test_run_until_process(self):
        env = Environment()

        def proc():
            yield env.timeout(5)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"
        assert env.now == 5

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def child():
            yield env.timeout(1)
            raise ValueError("boom")

        def parent(log):
            try:
                yield env.process(child())
            except ValueError as exc:
                log.append(str(exc))

        log = []
        env.process(parent(log))
        env.run()
        assert log == ["boom"]

    def test_unhandled_failure_raises_at_run(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        p = env.process(proc())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run(until=p)

    def test_yield_non_event_is_error(self):
        env = Environment()

        def proc():
            yield 5

        p = env.process(proc())
        with pytest.raises(TypeError):
            env.run(until=p)

    def test_waiting_on_processed_event(self):
        env = Environment()
        ev = env.event()
        log = []

        def early():
            yield env.timeout(1)
            ev.succeed("v")

        def late():
            yield env.timeout(10)
            got = yield ev  # long since processed
            log.append((env.now, got))

        env.process(early())
        env.process(late())
        env.run()
        assert log == [(10, "v")]

    def test_many_waiters_one_event(self):
        env = Environment()
        ev = env.event()
        log = []

        def waiter(tag):
            v = yield ev
            log.append((tag, v))

        for i in range(4):
            env.process(waiter(i))

        def firer():
            yield env.timeout(3)
            ev.succeed("x")

        env.process(firer())
        env.run()
        assert log == [(i, "x") for i in range(4)]


class TestEvents:
    def test_double_succeed_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_value_before_trigger(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            env.event().value

    def test_deadlock_detected(self):
        env = Environment()

        def proc():
            yield env.event()  # never fires

        p = env.process(proc())
        with pytest.raises(SimDeadlockError):
            env.run(until=p)


class TestAllOf:
    def test_barrier(self):
        env = Environment()

        def child(d, v):
            yield env.timeout(d)
            return v

        def parent(log):
            vals = yield env.all_of(
                [env.process(child(3, "a")), env.process(child(1, "b"))])
            log.append((env.now, vals))

        log = []
        env.process(parent(log))
        env.run()
        assert log == [(3, ["a", "b"])]

    def test_empty_barrier(self):
        env = Environment()

        def parent(log):
            yield env.all_of([])
            log.append(env.now)

        log = []
        env.process(parent(log))
        env.run()
        assert log == [0]

    def test_barrier_failure(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise KeyError("nope")

        def parent(log):
            try:
                yield env.all_of([env.process(bad())])
            except KeyError:
                log.append("failed")

        log = []
        env.process(parent(log))
        env.run()
        assert log == ["failed"]


class TestInterrupt:
    def test_interrupt_wakes_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
            except SimInterrupt as si:
                log.append((env.now, si.cause))

        def killer(p):
            yield env.timeout(2)
            p.interrupt("stop")

        p = env.process(sleeper())
        env.process(killer(p))
        env.run()
        assert log == [(2, "stop")]

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        p.interrupt()  # no error
