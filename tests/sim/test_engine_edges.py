"""Edge cases of the event engine and resources not covered elsewhere."""

import pytest

from repro.errors import SimDeadlockError
from repro.sim.engine import Environment
from repro.sim.resources import Resource


class TestNestedProcesses:
    def test_three_levels(self):
        env = Environment()

        def leaf():
            yield env.timeout(1)
            return "leaf"

        def middle():
            v = yield env.process(leaf())
            yield env.timeout(1)
            return v + "+middle"

        def root(out):
            v = yield env.process(middle())
            out.append((env.now, v))

        out = []
        env.process(root(out))
        env.run()
        assert out == [(2.0, "leaf+middle")]

    def test_process_waiting_on_itself_impossible(self):
        """A process cannot observe its own completion event before it
        completes — but another process can hold its handle."""
        env = Environment()

        def quick():
            yield env.timeout(1)
            return 5

        p = env.process(quick())

        def watcher(out):
            out.append((yield p))
            out.append((yield p))  # already processed: proxy path

        out = []
        env.process(watcher(out))
        env.run()
        assert out == [5, 5]

    def test_generator_exhausted_before_first_yield(self):
        env = Environment()

        def empty():
            return 42
            yield  # pragma: no cover

        p = env.process(empty())
        assert env.run(until=p) == 42
        assert env.now == 0.0


class TestRunSemantics:
    def test_run_until_zero(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(0)
            fired.append(env.now)
            yield env.timeout(1)
            fired.append(env.now)

        env.process(proc())
        env.run(until=0)
        assert fired == [0.0]
        env.run()
        assert fired == [0.0, 1.0]

    def test_run_empty_environment(self):
        env = Environment()
        env.run()          # no-op
        env.run(until=5)   # clock jumps to the deadline
        assert env.now == 5

    def test_deadlock_message_names_the_problem(self):
        env = Environment()

        def stuck():
            yield env.event()

        p = env.process(stuck())
        with pytest.raises(SimDeadlockError, match="drained"):
            env.run(until=p)


class TestResourceEdge:
    def test_release_from_finally_on_failure(self):
        """hold() releases even when the holder's body raises."""
        env = Environment()
        res = Resource(env, capacity=1)
        sequence = []

        def bad():
            req = res.request()
            yield req
            try:
                yield env.timeout(1)
                raise RuntimeError("boom")
            finally:
                res.release(req)

        def good():
            yield env.timeout(0.5)
            yield from res.hold(1)
            sequence.append(env.now)

        p = env.process(bad())
        env.process(good())
        with pytest.raises(RuntimeError):
            env.run(until=p)
        env.run()
        assert sequence == [2.0]
        assert res.users == 0

    def test_many_waiters_drain_in_order(self):
        env = Environment()
        res = Resource(env, capacity=2)
        done = []

        def worker(i):
            yield from res.hold(1.0)
            done.append(i)

        for i in range(7):
            env.process(worker(i))
        env.run()
        assert done == list(range(7))
        assert env.now == pytest.approx(4.0)  # ceil(7/2) waves
