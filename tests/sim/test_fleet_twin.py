"""The sim twin of the fleet scrape plane.

Simulated nodes publish the same exposition text a real node serves,
through the same strict parser, into the same aggregator — so the
derived signals (storage offload above all: the Fig 2/11 quantity)
and the SLO rules are exercised at cluster scale no real test rig
could reach.  The 1k-node test is the ISSUE acceptance criterion's
simulated half: a fault-injected node drives the identical
pending → firing → resolved lifecycle the real-fleet test asserts.
"""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.cluster import Cloud
from repro.metrics.exposition import parse_prometheus
from repro.metrics.fleet import FleetAggregator
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.sim.cluster_sim import Testbed
from repro.sim.fleet_twin import (
    SimScrapeTarget,
    cloud_targets,
    storage_target,
)
from repro.sim.fleet_twin import testbed_targets as targets_for_testbed
from repro.units import MiB

PROFILE = tiny_profile(vmi_size=64 * MiB, working_set=4 * MiB,
                       boot_time=2.0)
TRACE = generate_boot_trace(PROFILE, seed=11)


@pytest.fixture
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


def make_cloud(n=8, mode="algorithm1"):
    cloud = Cloud(n_compute=n, cache_mode=mode, cache_quota=16 * MiB)
    cloud.register_vmi("tiny", PROFILE.vmi_size, TRACE)
    return cloud


def sim_aggregator(cloud, targets, **kw):
    """Aggregator on the simulation's clock: polls are sim-timed, one
    interval apart, so staleness/backoff arithmetic runs in sim
    seconds."""
    now = [cloud.testbed.env.now]
    agg = FleetAggregator(targets, clock=lambda: now[0], **kw)
    agg._advance = lambda dt=agg.interval: now.__setitem__(
        0, now[0] + dt)
    return agg


class TestScrapeAdapter:
    def test_targets_render_strict_exposition(self, registry):
        cloud = make_cloud(n=4)
        cloud.start_vms([("tiny", 4)])
        for target in cloud_targets(cloud):
            text, health = target.scrape(timeout=1.0)
            exposition = parse_prometheus(text)  # strict, or raises
            assert len(exposition) > 0
            assert health["status"] == "ok"
        storage_text, _ = storage_target(cloud.testbed).scrape(1.0)
        storage = parse_prometheus(storage_text)
        assert storage.value("sim_storage_bytes_served_total") > 0

    def test_fault_injection_states(self, registry):
        tb = Testbed(n_compute=1)
        target = targets_for_testbed(tb)[1]
        assert isinstance(target, SimScrapeTarget)
        text, health = target.scrape(1.0)
        assert health["status"] == "ok"
        target.degrade()
        _, health = target.scrape(1.0)
        assert health["status"] == "degraded"
        target.fail()
        with pytest.raises(ConnectionError):
            target.scrape(1.0)
        target.recover()
        _, health = target.scrape(1.0)
        assert health["status"] == "ok"

    def test_compute_target_publishes_pool_counters(self, registry):
        cloud = make_cloud(n=2)
        res = cloud.start_vms([("tiny", 2)])
        node_id = res.scenario.records[0].node_id
        node = next(n for n in cloud.testbed.computes
                    if n.node_id == node_id)
        target = next(t for t in cloud_targets(cloud)
                      if t.name == node_id)
        exposition = parse_prometheus(target.scrape(1.0)[0])
        assert exposition.value(
            "sim_node_demand_read_bytes_total") > 0
        assert exposition.value("sim_cache_pool_entries") >= 1
        assert exposition.value("sim_cache_pool_used_bytes") > 0
        del node


class TestWarmingCurve:
    def test_offload_climbs_across_waves(self, registry):
        """The paper's signature curve, observed *through the scrape
        plane*: each warming wave boots the same VMI again, caches
        fill, and the fleet's storage-offload fraction climbs."""
        cloud = make_cloud(n=4)
        agg = sim_aggregator(cloud, cloud_targets(cloud),
                             interval=1.0)
        offloads = []
        for _wave in range(3):
            cloud.start_vms([("tiny", 4)])
            agg._advance()
            snap = agg.poll_once()
            offloads.append(snap.signals["storage_offload_fraction"])
        assert all(v is not None for v in offloads)
        assert offloads[0] < offloads[1] < offloads[2]
        assert offloads[2] > 0.5
        # Demand counters exist, so offload used the sim families,
        # not the hit-ratio fallback.
        assert snap.signals["nodes_ok"] == 5.0  # storage + 4 computes


class TestThousandNodeFleet:
    @pytest.mark.timeout(120)
    def test_flash_crowd_then_fault_alert_lifecycle(self, registry):
        """ISSUE acceptance (simulated half): a 1k-node fleet under a
        flash-crowd wave; one node is degraded then killed and the
        node-scoped SLO rule walks pending → firing → resolved within
        deterministic, bounded polls."""
        cloud = make_cloud(n=1000)
        cloud.start_vms([("tiny", 100)])  # flash crowd
        targets = cloud_targets(cloud)
        assert len(targets) == 1001
        agg = sim_aggregator(
            cloud, targets, interval=1.0, workers=16,
            rules=["node:unhealthy >= 1 for 3 resolve 2"])

        snap = agg.poll_once()
        assert snap.signals["nodes_total"] == 1001.0
        assert snap.signals["nodes_ok"] == 1001.0
        assert 0.0 < snap.signals["storage_offload_fraction"] < 1.0
        assert snap.signals["cache_hit_ratio"] > 0.0

        victim = next(t for t in targets if t.name == "node500")
        victim.degrade()
        transitions = []

        def poll():
            agg._advance()
            s = agg.poll_once()
            transitions.extend((e.instance, e.state) for e in s.events)
            return s

        poll()  # degraded -> pending
        assert transitions == [("node500", "pending")]
        victim.fail()  # degraded node dies outright mid-lifecycle
        poll()
        snap = poll()  # breach streak 3 -> firing
        assert transitions == [("node500", "pending"),
                               ("node500", "firing")]
        assert snap.nodes["node500"].status in ("stale",
                                                 "unreachable")
        assert snap.signals["nodes_ok"] == 1000.0

        victim.recover()
        # Clear the backoff so the revived node is scraped again
        # immediately (sim time jumps past the horizon).
        agg._advance(60.0)
        for _ in range(3):
            snap = poll()
            if ("node500", "resolved") in transitions:
                break
        assert transitions[-1] == ("node500", "resolved")
        assert snap.signals["nodes_ok"] == 1001.0
        assert registry.counter(
            "fleet_alert_transitions_total",
            rule="node:unhealthy >= 1 for 3 resolve 2",
            state="resolved").value == 1
