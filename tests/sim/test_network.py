"""Tests for the fair-share link model."""

import pytest

from repro.sim.engine import Environment
from repro.sim.network import DuplexLink, FairShareLink


def run_transfers(bandwidth, latency, jobs):
    """jobs: list of (start_time, nbytes); returns completion times."""
    env = Environment()
    link = FairShareLink(env, bandwidth, latency)
    done = {}

    def client(tag, start, nbytes):
        yield env.timeout(start)
        yield from link.transfer(nbytes)
        done[tag] = env.now

    for i, (start, nbytes) in enumerate(jobs):
        env.process(client(i, start, nbytes))
    env.run()
    return done, link


class TestSingleFlow:
    def test_full_bandwidth(self):
        done, _ = run_transfers(100.0, 0.0, [(0.0, 1000)])
        assert done[0] == pytest.approx(10.0)

    def test_latency_added_once(self):
        done, _ = run_transfers(100.0, 0.5, [(0.0, 1000)])
        assert done[0] == pytest.approx(10.5)

    def test_zero_bytes_costs_latency_only(self):
        done, _ = run_transfers(100.0, 0.25, [(0.0, 0)])
        assert done[0] == pytest.approx(0.25)

    def test_negative_rejected(self):
        env = Environment()
        link = FairShareLink(env, 100.0, 0.0)

        def proc():
            yield from link.transfer(-1)

        p = env.process(proc())
        with pytest.raises(ValueError):
            env.run(until=p)


class TestFairSharing:
    def test_two_equal_flows_halve_bandwidth(self):
        done, _ = run_transfers(100.0, 0.0,
                                [(0.0, 1000), (0.0, 1000)])
        assert done[0] == pytest.approx(20.0)
        assert done[1] == pytest.approx(20.0)

    def test_n_flows_scale_linearly(self):
        for n in (4, 8):
            done, _ = run_transfers(
                100.0, 0.0, [(0.0, 1000)] * n)
            for i in range(n):
                assert done[i] == pytest.approx(10.0 * n)

    def test_short_flow_finishes_first_long_flow_speeds_up(self):
        # A 1000-byte and a 200-byte flow at bandwidth 100:
        # both run at 50 until the short one finishes at t=4 (200/50);
        # the long one then has 800 left at full rate → t = 4 + 8 = 12.
        done, _ = run_transfers(100.0, 0.0, [(0.0, 1000), (0.0, 200)])
        assert done[1] == pytest.approx(4.0)
        assert done[0] == pytest.approx(12.0)

    def test_staggered_arrival(self):
        # Flow A (1000 B) alone from t=0..5 moves 500.  Flow B (250 B)
        # arrives at t=5: both at rate 50.  B done at t=10; A has 250
        # left, full rate → t = 10 + 2.5.
        done, _ = run_transfers(100.0, 0.0, [(0.0, 1000), (5.0, 250)])
        assert done[1] == pytest.approx(10.0)
        assert done[0] == pytest.approx(12.5)

    def test_conservation(self):
        """Total bytes / bandwidth = makespan when always busy."""
        jobs = [(0.0, 500), (0.0, 1500), (0.0, 1000)]
        done, link = run_transfers(100.0, 0.0, jobs)
        assert max(done.values()) == pytest.approx(3000 / 100.0)
        assert link.stats.bytes_moved == 3000
        assert link.stats.peak_flows == 3


class TestStatsAndState:
    def test_idle_link_full_rate(self):
        env = Environment()
        link = FairShareLink(env, 200.0, 0.0)
        assert link.current_rate() == 200.0
        assert link.active_flows == 0

    def test_busy_time(self):
        done, link = run_transfers(100.0, 0.0, [(0.0, 1000)])
        assert link.stats.busy_time == pytest.approx(10.0)

    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(ValueError):
            FairShareLink(env, 0, 0.0)
        with pytest.raises(ValueError):
            FairShareLink(env, 100, -1)


class TestDuplex:
    def test_directions_independent(self):
        env = Environment()
        duplex = DuplexLink(env, 100.0, 0.1, "nic")
        done = {}

        def up():
            yield from duplex.up.transfer(1000)
            done["up"] = env.now

        def down():
            yield from duplex.down.transfer(1000)
            done["down"] = env.now

        env.process(up())
        env.process(down())
        env.run()
        # No contention between directions.
        assert done["up"] == pytest.approx(10.1)
        assert done["down"] == pytest.approx(10.1)
        assert duplex.rtt() == pytest.approx(0.2)
