"""Tests for the storage node (page cache, fetch merging) and NFS."""

import pytest

from repro.sim.calibration import GBE_1, NFS_RWSIZE
from repro.sim.engine import Environment
from repro.sim.network import FairShareLink
from repro.sim.nfs import NFSService
from repro.sim.node import ComputeNode, PageCache, StorageNode
from repro.units import KiB, MiB


class TestPageCache:
    def test_miss_then_hit(self):
        pc = PageCache(capacity=MiB)
        cached, gaps = pc.lookup("f", 0, 1000)
        assert cached == 0 and gaps == [(0, 1000)]
        pc.insert("f", 0, 1000)
        cached, gaps = pc.lookup("f", 0, 1000)
        assert cached == 1000 and gaps == []

    def test_partial(self):
        pc = PageCache(capacity=MiB)
        pc.insert("f", 0, 500)
        cached, gaps = pc.lookup("f", 0, 1000)
        assert cached == 500 and gaps == [(500, 500)]

    def test_files_are_independent(self):
        pc = PageCache(capacity=MiB)
        pc.insert("a", 0, 1000)
        cached, _ = pc.lookup("b", 0, 1000)
        assert cached == 0

    def test_lru_eviction_by_file(self):
        pc = PageCache(capacity=1000)
        pc.insert("a", 0, 600)
        pc.insert("b", 0, 600)   # overflows: evicts a
        assert pc.cached_bytes("a") == 0
        assert pc.cached_bytes("b") == 600
        assert pc.stats.evicted_files == 1

    def test_lookup_refreshes_lru(self):
        pc = PageCache(capacity=1000)
        pc.insert("a", 0, 400)
        pc.insert("b", 0, 400)
        pc.lookup("a", 0, 400)       # a becomes most recent
        pc.insert("c", 0, 400)       # evicts b, not a
        assert pc.cached_bytes("a") == 400
        assert pc.cached_bytes("b") == 0

    def test_stats(self):
        pc = PageCache(capacity=MiB)
        pc.insert("f", 0, 500)
        pc.lookup("f", 0, 1000)
        assert pc.stats.hit_bytes == 500
        assert pc.stats.miss_bytes == 500


class TestStorageNodeReads:
    def test_first_read_hits_disk_second_hits_cache(self):
        env = Environment()
        node = StorageNode(env)
        times = []

        def proc():
            t0 = env.now
            yield from node.read_file("f", 0, 64 * KiB)
            times.append(env.now - t0)
            t0 = env.now
            yield from node.read_file("f", 0, 64 * KiB)
            times.append(env.now - t0)

        env.process(proc())
        env.run()
        assert times[0] > 0.005   # disk seek
        assert times[1] < 0.001   # page cache
        assert node.disk.stats.read_ops == 1

    def test_concurrent_identical_misses_merge(self):
        env = Environment()
        node = StorageNode(env)
        done = []

        def reader(tag):
            yield from node.read_file("f", 0, 64 * KiB)
            done.append((tag, env.now))

        for i in range(8):
            env.process(reader(i))
        env.run()
        assert len(done) == 8
        # One disk I/O served everyone.
        assert node.disk.stats.read_ops == 1
        assert node.page_cache.stats.merged_fetches == 7
        # Waiters finish when the single fetch lands, not 8x later.
        assert max(t for _, t in done) < 0.050

    def test_different_files_do_not_merge(self):
        env = Environment()
        node = StorageNode(env)

        def reader(f):
            yield from node.read_file(f, 0, 4 * KiB)

        for f in ("a", "b", "c"):
            env.process(reader(f))
        env.run()
        assert node.disk.stats.read_ops == 3


class TestNFS:
    def make(self, n_threads=8):
        env = Environment()
        storage = StorageNode(env)
        link = FairShareLink(env, GBE_1.bandwidth, GBE_1.latency)
        nfs = NFSService(env, storage, link, threads=n_threads)
        return env, storage, nfs

    def test_read_costs_disk_then_network(self):
        env, storage, nfs = self.make()
        times = []

        def proc():
            t0 = env.now
            yield from nfs.read("f", 0, 128 * KiB)
            times.append(env.now - t0)

        env.process(proc())
        env.run()
        # seek (~7 ms) + transfer over 105 MiB/s (~1.2 ms) + latencies
        assert 0.007 < times[0] < 0.050
        assert nfs.stats.bytes_served == 128 * KiB

    def test_warm_read_is_network_bound(self):
        env, storage, nfs = self.make()
        times = []

        def proc():
            yield from nfs.read("f", 0, 128 * KiB)
            t0 = env.now
            yield from nfs.read("f", 0, 128 * KiB)
            times.append(env.now - t0)

        env.process(proc())
        env.run()
        expected = 128 * KiB / GBE_1.bandwidth
        assert times[0] == pytest.approx(expected, rel=0.5)

    def test_rwsize_chunking_charges_cpu(self):
        env, storage, nfs = self.make()

        def proc():
            yield from nfs.read("f", 0, 4 * NFS_RWSIZE)

        env.process(proc())
        env.run()
        assert nfs.cpu.stats.busy_time == pytest.approx(
            4 * nfs.request_cpu)

    def test_zero_read_noop(self):
        env, storage, nfs = self.make()

        def proc():
            yield from nfs.read("f", 0, 0)
            return None
            yield  # pragma: no cover

        p = env.process(proc())
        env.run(until=p)
        assert nfs.stats.read_requests == 0

    def test_invalid_rwsize(self):
        env = Environment()
        storage = StorageNode(env)
        link = FairShareLink(env, 1e6, 0.0)
        with pytest.raises(ValueError):
            NFSService(env, storage, link, rwsize=0)


class TestComputeNode:
    def test_composition(self):
        env = Environment()
        node = ComputeNode(env, "node00")
        assert node.disk.profile.spindles == 1
        assert node.memory.profile.capacity > 0
        assert "node00" in repr(node)
