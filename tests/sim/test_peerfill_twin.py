"""Fig 11 at fleet scale: peer fill's storage offload in the twin.

The real three-server tests prove correctness; this proves the
*scaling claim* — at 64+ nodes the storage node's share of deployment
traffic collapses when peer fill is on, and the FleetAggregator
derives the identical offload number from the sim's published metric
families (no special-case signal code).
"""

import pytest

from repro.metrics.fleet import FleetAggregator
from repro.metrics.registry import MetricsRegistry, set_registry
from repro.sim.peerfill_twin import PeerFillFleetSim, peerfill_targets
from repro.units import MiB

N = 64
# Fill time (~1.2 s at 1 GbE) must exceed the 0.5 s stagger, or boots
# never overlap and there is no contention to relieve.
WS = 128 * MiB


@pytest.fixture(autouse=True)
def registry():
    mine = MetricsRegistry()
    old = set_registry(mine)
    yield mine
    set_registry(old)


def run_sim(**kw):
    defaults = dict(n_nodes=N, working_set_bytes=WS, stagger=0.5)
    defaults.update(kw)
    return PeerFillFleetSim(**defaults).run()


def scrape_signals(sim):
    """One aggregator poll over the finished sim's targets."""
    targets = peerfill_targets(sim)
    agg = FleetAggregator(targets, clock=lambda: sim.env.now + 1.0)
    snap = agg.poll_once()
    agg.close()
    return snap


class TestFig11Offload:
    def test_peer_fill_materially_offloads_storage(self):
        """The acceptance bar: enabled vs disabled differ materially
        at 64 nodes."""
        off = run_sim(peer_fill=False)
        on = run_sim(peer_fill=True)
        assert off.storage_offload_fraction == 0.0
        assert on.storage_offload_fraction > 0.5
        # Offloading also collapses the makespan: the herd stops
        # serializing behind one NIC.
        assert on.makespan < off.makespan / 2

    def test_every_byte_is_accounted(self):
        sim = run_sim(peer_fill=True, verify_failure_rate=0.05)
        for s in sim.nodes:
            assert s.peer_bytes + s.storage_bytes \
                == s.demand_read_bytes
        assert sim.peer_bytes_total + sim.storage_served_bytes \
            == sim.demand_bytes_total

    def test_verify_failures_divert_to_storage(self):
        clean = run_sim(peer_fill=True, verify_failure_rate=0.0)
        dirty = run_sim(peer_fill=True, verify_failure_rate=0.25)
        assert dirty.storage_offload_fraction \
            < clean.storage_offload_fraction
        assert sum(s.verify_failures for s in dirty.nodes) > 0

    def test_simultaneous_start_degrades_to_baseline(self):
        """stagger=0 is the honest edge: nobody is warm while
        everybody fills, so peer fill cannot help the first wave."""
        sim = run_sim(peer_fill=True, stagger=0.0)
        assert sim.storage_offload_fraction == 0.0

    def test_warm_pool_spreads_the_load(self):
        """Later nodes fill faster than the first wave: every finished
        boot adds a serving NIC, so fill bandwidth grows."""
        sim = run_sim(peer_fill=True)
        first = sim.nodes[0].fill_seconds
        last = sim.nodes[-1].fill_seconds
        assert last < first
        served = {s.peer for s in sim.nodes if s.peer is not None}
        assert len(served) > 1, "load must spread beyond one peer"

    @pytest.mark.parametrize("fanout", [1, 2, 4])
    def test_fanout_bound_is_respected(self, fanout):
        """No peer ever serves more than ``max_peer_fanout`` fills at
        once — reconstructed from the fill intervals."""
        sim = run_sim(peer_fill=True, max_peer_fanout=fanout)
        by_peer: dict[str, list] = {}
        for s in sim.nodes:
            if s.peer is not None:
                by_peer.setdefault(s.peer, []).append(
                    (s.fill_start, s.fill_end))
        assert by_peer, "somebody must have served a peer fill"
        for intervals in by_peer.values():
            events = [(t, +1) for t, _ in intervals] \
                + [(t, -1) for _, t in intervals]
            load = peak = 0
            for _t, delta in sorted(events):
                load += delta
                peak = max(peak, load)
            assert peak <= fanout

    def test_summary_shape(self):
        sim = run_sim(peer_fill=True)
        doc = sim.summary()
        assert doc["n_nodes"] == N
        assert doc["peer_fill"] is True
        assert doc["storage_offload_fraction"] \
            == sim.storage_offload_fraction
        assert doc["makespan"] == sim.makespan

    @pytest.mark.parametrize("bad", [
        dict(n_nodes=0),
        dict(verify_failure_rate=1.5),
        dict(verify_failure_rate=-0.1),
        dict(max_peer_fanout=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            PeerFillFleetSim(**bad)


class TestAggregatorDerivesTheFigure:
    def test_signal_matches_sim_truth(self):
        """The aggregator's preference tuples resolve the sim families
        into the very number the sim computed — Fig 11 through the
        scrape plane, no special-case signal code."""
        sim = run_sim(peer_fill=True)
        snap = scrape_signals(sim)
        assert snap.signals["storage_offload_fraction"] \
            == pytest.approx(sim.storage_offload_fraction)

    def test_signal_zero_without_peer_fill(self):
        sim = run_sim(peer_fill=False)
        snap = scrape_signals(sim)
        assert snap.signals["storage_offload_fraction"] \
            == pytest.approx(0.0)

    def test_node_health_reports_fill_source(self):
        sim = run_sim(peer_fill=True)
        snap = scrape_signals(sim)
        peers = [v.health.get("peer") for name, v in snap.nodes.items()
                 if name != "storage"]
        assert any(p is not None for p in peers)
