"""Tests for the §7.3 prefetch boot mode."""

import pytest

from repro.bootmodel.generator import generate_boot_trace
from repro.bootmodel.profiles import tiny_profile
from repro.sim.blockio import SimImage
from repro.sim.cluster_sim import BootJob, Testbed, boot_vms
from repro.units import MiB

PROFILE = tiny_profile(vmi_size=64 * MiB, working_set=8 * MiB,
                       boot_time=4.0)
TRACE = generate_boot_trace(PROFILE, seed=7)


def boot_once(prefetch: bool, network: str = "1gbe") -> float:
    tb = Testbed(n_compute=1, network=network)
    node = tb.computes[0]
    base = tb.make_base("base.raw", PROFILE.vmi_size)
    chain = SimImage("vm.cow", base.size,
                     tb.compute_mem_location(node, "vm.cow"),
                     backing=base)
    res = boot_vms(tb, [BootJob("vm", node, chain, TRACE,
                                prefetch=prefetch)])
    return res.records[0].boot_time


class TestPrefetch:
    def test_prefetch_never_slower(self):
        assert boot_once(True) <= boot_once(False) * 1.01

    def test_gain_bounded_by_read_wait(self):
        """§7.3: 'prefetching can only mask' the read-wait share —
        bounded by the plain boot's actual I/O portion (everything that
        is not CPU work or VMM overhead)."""
        plain = boot_once(False)
        prefetched = boot_once(True)
        gain = (plain - prefetched) / plain
        cpu_floor = PROFILE.cpu_time * 0.85  # jitter lower bound
        max_maskable = (plain - cpu_floor - 0.5) / plain
        assert 0 <= gain <= max_maskable + 0.02

    def test_prefetch_floor_is_cpu_time(self):
        """With perfect prefetching the boot cannot beat its CPU work
        plus the VMM overhead."""
        tb_floor = PROFILE.cpu_time * (1 - 0.15)  # jitter lower bound
        assert boot_once(True) >= tb_floor

    def test_same_data_moved(self):
        tb1 = Testbed(n_compute=1, network="ib")
        tb2 = Testbed(n_compute=1, network="ib")
        for tb, pf in ((tb1, False), (tb2, True)):
            node = tb.computes[0]
            base = tb.make_base("base.raw", PROFILE.vmi_size)
            chain = SimImage("vm.cow", base.size,
                             tb.compute_mem_location(node, "vm.cow"),
                             backing=base)
            boot_vms(tb, [BootJob("vm", node, chain, TRACE,
                                  prefetch=pf)])
        assert tb1.nfs.stats.bytes_served == tb2.nfs.stats.bytes_served
