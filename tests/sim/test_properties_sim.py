"""Property-based tests on the simulation core (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.sim.engine import Environment
from repro.sim.network import FairShareLink
from repro.sim.resources import Resource

transfers = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),   # start time
        st.integers(min_value=1, max_value=100_000),  # bytes
    ),
    min_size=1, max_size=12,
)


@given(jobs=transfers,
       bandwidth=st.floats(min_value=10.0, max_value=1e9))
@settings(max_examples=80, deadline=None)
def test_fairshare_conservation(jobs, bandwidth):
    """Work conservation: the link is never idle while flows exist, so
    the last completion is bounded by latest-start + total/bandwidth,
    and no flow finishes before its own solo transfer time."""
    env = Environment()
    link = FairShareLink(env, bandwidth, 0.0)
    done: dict[int, float] = {}

    def client(i, start, nbytes):
        yield env.timeout(start)
        yield from link.transfer(nbytes)
        done[i] = env.now

    for i, (start, nbytes) in enumerate(jobs):
        env.process(client(i, start, nbytes))
    env.run()

    assert len(done) == len(jobs)
    total = sum(n for _, n in jobs)
    latest_start = max(s for s, _ in jobs)
    makespan = max(done.values())
    assert makespan <= latest_start + total / bandwidth + 1e-6
    for i, (start, nbytes) in enumerate(jobs):
        solo = nbytes / bandwidth
        assert done[i] >= start + solo - max(1e-9 * start, 1e-9)


@given(jobs=transfers)
@settings(max_examples=50, deadline=None)
def test_fairshare_accounting(jobs):
    """Every byte handed to the link is accounted exactly once."""
    env = Environment()
    link = FairShareLink(env, 1000.0, 0.0)

    def client(start, nbytes):
        yield env.timeout(start)
        yield from link.transfer(nbytes)

    for start, nbytes in jobs:
        env.process(client(start, nbytes))
    env.run()
    assert link.stats.bytes_moved == sum(n for _, n in jobs)
    assert link.active_flows == 0


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=30))
@settings(max_examples=80, deadline=None)
def test_engine_fires_in_time_order(delays):
    """Events fire in non-decreasing time order, ties FIFO."""
    env = Environment()
    fired: list[tuple[float, int]] = []

    def proc(i, d):
        yield env.timeout(d)
        fired.append((env.now, i))

    for i, d in enumerate(delays):
        env.process(proc(i, d))
    env.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # Equal delays fire in creation order.
    for t in set(times):
        idxs = [i for ft, i in fired if ft == t]
        assert idxs == sorted(idxs)


@given(holds=st.lists(st.floats(min_value=0.01, max_value=5.0),
                      min_size=1, max_size=15),
       capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_resource_utilization_bound(holds, capacity):
    """A FIFO resource's makespan is at least total/capacity and at
    most the serial total."""
    env = Environment()
    res = Resource(env, capacity=capacity)

    def worker(d):
        yield from res.hold(d)

    for d in holds:
        env.process(worker(d))
    env.run()
    total = sum(holds)
    assert env.now >= total / capacity - 1e-9
    assert env.now <= total + 1e-9
    assert res.users == 0
    assert res.stats.busy_time == pytest.approx(total)
