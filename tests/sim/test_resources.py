"""Tests for FIFO resources."""

import pytest

from repro.sim.engine import Environment
from repro.sim.resources import Resource


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(tag):
            yield from res.hold(2.0)
            log.append((tag, env.now))

        for i in range(3):
            env.process(worker(i))
        env.run()
        assert log == [(0, 2.0), (1, 4.0), (2, 6.0)]

    def test_capacity_two_pairs(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []

        def worker(tag):
            yield from res.hold(2.0)
            log.append((tag, env.now))

        for i in range(4):
            env.process(worker(i))
        env.run()
        assert log == [(0, 2.0), (1, 2.0), (2, 4.0), (3, 4.0)]

    def test_fifo_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(tag, start):
            yield env.timeout(start)
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(1)
            res.release(req)

        env.process(worker("a", 0.0))
        env.process(worker("b", 0.1))
        env.process(worker("c", 0.2))
        env.run()
        assert order == ["a", "b", "c"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_stats(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            yield from res.hold(1.0)

        for _ in range(3):
            env.process(worker())
        env.run()
        assert res.stats.total_requests == 3
        # Second waits 1 s, third waits 2 s.
        assert res.stats.total_wait_time == pytest.approx(3.0)
        assert res.stats.mean_wait == pytest.approx(1.0)
        assert res.stats.busy_time == pytest.approx(3.0)
        assert res.stats.max_queue_len == 2

    def test_release_while_queued_withdraws(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def holder():
            yield from res.hold(5.0)
            log.append(("holder", env.now))

        def impatient():
            yield env.timeout(1)
            req = res.request()
            # Give up immediately without waiting for the grant.
            res.release(req)

        def patient():
            yield env.timeout(2)
            yield from res.hold(1.0)
            log.append(("patient", env.now))

        env.process(holder())
        env.process(impatient())
        env.process(patient())
        env.run()
        # The withdrawn request must not consume the freed slot.
        assert log == [("holder", 5.0), ("patient", 6.0)]

    def test_exception_during_hold_releases(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def failing():
            try:
                yield from res.hold(100.0)
            except Exception:
                raise

        def killer(p):
            yield env.timeout(1)
            p.interrupt()

        def successor():
            yield env.timeout(2)
            yield from res.hold(1.0)
            log.append(env.now)

        p = env.process(failing())
        env.process(killer(p))
        env.process(successor())
        env.run()
        assert log == [3.0]  # slot was freed at t=1 by the interrupt
        assert res.users == 0
