"""Twin-equivalence: SimImage must mirror the real driver exactly.

The scalability conclusions stand on the in-memory image model
behaving like the file-backed driver.  These property tests run the
same random operation sequences through both and require *exact*
agreement on:

* bytes fetched from the backing image (the storage-traffic measure
  behind Figures 9/10/12/14),
* guest-data bytes allocated in the overlay,
* copy-on-read enablement after quota pressure.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.imagefmt.chain import create_cache_chain, create_cow_chain
from repro.imagefmt.raw import RawImage
from repro.sim.blockio import Location, SimImage, sim_cache_chain
from repro.units import KiB, MiB

from tests.conftest import pattern

SIZE = 512 * KiB

NFS = Location("nfs", "storage", "base")
CDISK = Location("compute-disk", "node00", "cache")
CMEM = Location("compute-mem", "node00", "cow")

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "read", "read", "write"]),
        st.integers(min_value=0, max_value=SIZE - 1),
        st.integers(min_value=1, max_value=32 * KiB),
    ),
    min_size=1, max_size=25,
)


def run_real(tmp_path, ops, *, quota, cache_bits, tag):
    base_p = str(tmp_path / f"base-{tag}.raw")
    img = RawImage.create(base_p, SIZE)
    img.write(0, pattern(0, SIZE))
    img.close()
    if quota:
        chain = create_cache_chain(
            base_p, str(tmp_path / f"cache-{tag}.qcow2"),
            str(tmp_path / f"cow-{tag}.qcow2"), quota=quota,
            cache_cluster_size=1 << cache_bits)
    else:
        chain = create_cow_chain(base_p,
                                 str(tmp_path / f"cow-{tag}.qcow2"))
    with chain:
        for kind, offset, length in ops:
            length = min(length, SIZE - offset)
            if length <= 0:
                continue
            if kind == "read":
                chain.read(offset, length)
            else:
                chain.write(offset, b"\xEE" * length)
        base = chain.backing
        while base.backing is not None:
            base = base.backing
        cache = chain.backing if quota else None
        result = {
            "backing_traffic": base.stats.bytes_read,
            "cow_data": chain.allocated_data_bytes(),
            "cor_enabled": (cache.cor_enabled if cache is not None
                            else None),
            "cache_data": (cache.allocated_data_bytes()
                           if cache is not None else None),
        }
    for f in os.listdir(tmp_path):
        if tag in f:
            os.unlink(os.path.join(tmp_path, f))
    return result


def run_sim(ops, *, quota, cache_bits):
    base = SimImage("base", SIZE, NFS, preallocated=True)
    if quota:
        chain, cache = sim_cache_chain(
            base, cache_location=CDISK, cow_location=CMEM,
            quota=quota, cache_cluster_bits=cache_bits)
    else:
        chain = SimImage("cow", SIZE, CMEM, backing=base)
        cache = None
    for kind, offset, length in ops:
        length = min(length, SIZE - offset)
        if length <= 0:
            continue
        if kind == "read":
            chain.read(offset, length, [])
        else:
            chain.write(offset, length, [])
    return {
        "backing_traffic": base.stats.bytes_read,
        "cow_data": chain.allocated.total(),
        "cor_enabled": cache.cor_enabled if cache is not None else None,
        "cache_data": (cache.allocated.total()
                       if cache is not None else None),
    }


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=ops_strategy)
def test_plain_cow_twins_agree(tmp_path, ops):
    tag = f"p{abs(hash(tuple(ops)))}"
    real = run_real(tmp_path, ops, quota=0, cache_bits=9, tag=tag)
    sim = run_sim(ops, quota=0, cache_bits=9)
    assert sim["backing_traffic"] == real["backing_traffic"]
    assert sim["cow_data"] == real["cow_data"]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=ops_strategy, cache_bits=st.sampled_from([9, 12, 16]))
def test_cache_chain_twins_agree(tmp_path, ops, cache_bits):
    quota = 2 * MiB  # ample: no quota pressure in this test
    tag = f"c{abs(hash((tuple(ops), cache_bits)))}"
    real = run_real(tmp_path, ops, quota=quota, cache_bits=cache_bits,
                    tag=tag)
    sim = run_sim(ops, quota=quota, cache_bits=cache_bits)
    assert sim["backing_traffic"] == real["backing_traffic"]
    assert sim["cache_data"] == real["cache_data"]
    assert sim["cow_data"] == real["cow_data"]
    assert sim["cor_enabled"] == real["cor_enabled"]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=ops_strategy, quota_kib=st.integers(32, 128))
def test_quota_pressure_twins_agree(tmp_path, ops, quota_kib):
    """Under quota pressure the twins must disable CoR at the same
    point and end with the same cache payload."""
    quota = quota_kib * KiB
    tag = f"q{abs(hash((tuple(ops), quota_kib)))}"
    real = run_real(tmp_path, ops, quota=quota, cache_bits=9, tag=tag)
    sim = run_sim(ops, quota=quota, cache_bits=9)
    assert sim["cor_enabled"] == real["cor_enabled"]
    assert sim["cache_data"] == real["cache_data"]
    assert sim["backing_traffic"] == real["backing_traffic"]
