"""Tests for the memory-snapshot cache extension."""

import pytest

from repro.snapshots.experiment import run_snapshot_resume
from repro.snapshots.resume_model import (
    CENTOS_SNAPSHOT,
    ResumeProfile,
    generate_resume_trace,
)
from repro.units import GiB, MB, MiB


class TestResumeProfile:
    def test_bridge_to_os_profile(self):
        os_profile = CENTOS_SNAPSHOT.as_os_profile()
        assert os_profile.vmi_size == CENTOS_SNAPSHOT.memory_size
        assert os_profile.read_working_set == \
            CENTOS_SNAPSHOT.resume_working_set
        assert os_profile.write_fraction == 0.0

    def test_resume_is_io_dominated(self):
        """Resume CPU time is a fraction of a boot's ~30 s."""
        assert CENTOS_SNAPSHOT.resume_cpu_time < 5.0

    def test_working_set_is_small_fraction_of_ram(self):
        frac = CENTOS_SNAPSHOT.resume_working_set \
            / CENTOS_SNAPSHOT.memory_size
        assert frac < 0.25


class TestResumeTrace:
    def test_working_set_target(self):
        trace = generate_resume_trace(CENTOS_SNAPSHOT, seed=1)
        ws = trace.unique_read_bytes()
        target = CENTOS_SNAPSHOT.resume_working_set
        assert abs(ws - target) < 0.02 * target

    def test_no_writes(self):
        trace = generate_resume_trace(CENTOS_SNAPSHOT, seed=1)
        assert trace.total_write_bytes() == 0

    def test_more_sequential_than_boot(self):
        """Page restore streams: larger reads than a disk boot."""
        trace = generate_resume_trace(CENTOS_SNAPSHOT, seed=1)
        sizes = sorted(op.length for op in trace.reads())
        median = sizes[len(sizes) // 2]
        assert median >= 32 * 1024

    def test_deterministic(self):
        a = generate_resume_trace(CENTOS_SNAPSHOT, seed=4)
        b = generate_resume_trace(CENTOS_SNAPSHOT, seed=4)
        assert a.ops == b.ops


class TestResumeExperiment:
    @pytest.fixture(scope="class")
    def log(self):
        tiny = ResumeProfile(name="tiny", memory_size=256 * MiB,
                             resume_working_set=16 * MB,
                             resume_cpu_time=1.0)
        return run_snapshot_resume([1, 8], profile=tiny)

    def test_series_present(self, log):
        names = {s.name for s in log.series}
        assert names == {"Cold boot (QCOW2)", "Snapshot resume",
                         "Snapshot resume - warm cache"}

    def test_cached_resume_fastest_at_scale(self, log):
        cached = log.get("Snapshot resume - warm cache")
        resume = log.get("Snapshot resume")
        assert cached.y_at(8) <= resume.y_at(8)

    def test_cached_resume_flat(self, log):
        assert log.get("Snapshot resume - warm cache").is_flat(
            tolerance=0.25)

    def test_single_resume_beats_boot(self, log):
        assert log.get("Snapshot resume").y_at(1) < \
            log.get("Cold boot (QCOW2)").y_at(1)
