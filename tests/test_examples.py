"""Smoke tests: the fast examples must run end to end.

The cluster-scale examples (parameter sweep, scale-out, multi-tenant,
resume) take minutes and are exercised by the benchmark layer's
equivalent runners; here we run the two file/socket-level examples,
which double as integration tests of the real-I/O stack.
"""

import glob
import json
import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_example(name: str, *args: str, timeout: float = 120.0) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", name), *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        workdir = str(tmp_path / "quickstart")
        out = run_example("quickstart.py", "--workdir", workdir)
        assert "cold boot" in out
        assert "warm boot: fetched 0 B" in out
        assert "100.0%" in out

        # Every image the example produced must pass the fsck tool:
        # cleanly closed caches, no leaks, no dirty bits left behind.
        images = sorted(
            glob.glob(os.path.join(workdir, "*.qcow2"))
            + glob.glob(os.path.join(workdir, "*.raw")))
        assert images, "quickstart left no images to check"
        proc = subprocess.run(
            [sys.executable, os.path.join(ROOT, "tools", "img_check.py"),
             "--json", *images],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["clean"] is True
        assert len(doc["images"]) == len(images)

    def test_quickstart_prefetch(self, tmp_path):
        workdir = str(tmp_path / "quickstart-pf")
        out = run_example("quickstart.py", "--workdir", workdir,
                          "--prefetch")
        assert "prefetch boot (protocol v4" in out
        assert "prefetched " in out
        assert " hit by demand reads" in out

    def test_remote_storage_node(self):
        out = run_example("remote_storage_node.py")
        assert "storage node serving nbd://" in out
        assert "warm boot pulled 0 B" in out
        assert "injected 2 connection drops" in out
        assert "shut down gracefully" in out

    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "elastic_web_scaleout.py",
        "hpc_parameter_sweep.py",
        "multi_tenant_iaas.py",
        "fast_vm_resume.py",
        "remote_storage_node.py",
    ])
    def test_example_exists_and_compiles(self, name):
        path = os.path.join(ROOT, "examples", name)
        assert os.path.exists(path)
        import py_compile

        py_compile.compile(path, doraise=True)
