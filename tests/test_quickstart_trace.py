"""Tier-1 smoke: a traced quickstart run yields a valid, coherent trace.

Runs ``examples/quickstart.py --trace`` in a subprocess (the exact
user-facing flow), then checks the whole observability contract on the
artifact: every record passes the JSON schema, boot_report reconstructs
the expected boots, and the per-layer byte attribution reconciles with
the replayer's own accounting — the Fig 9 "events match the counters"
invariant.
"""

import os
import subprocess
import sys

import pytest

from repro.metrics.boot_report import build_report, format_report
from repro.metrics.tracing import load_trace, validate_trace

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

pytestmark = [pytest.mark.smoke, pytest.mark.timeout(120)]


@pytest.fixture(scope="module")
def trace_records(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "boot.jsonl")
    proc = subprocess.run(
        [sys.executable,
         os.path.join(ROOT, "examples", "quickstart.py"),
         "--trace", path],
        capture_output=True, text=True, timeout=110,
    )
    assert proc.returncode == 0, proc.stderr
    assert "trace written to" in proc.stdout
    return load_trace(path)


def test_every_record_passes_the_schema(trace_records):
    assert validate_trace(trace_records) == []


def test_report_reconstructs_all_boots(trace_records):
    report = build_report(trace_records)
    by_clock = {"wall": [], "sim": []}
    for boot in report.boots:
        by_clock[boot.clock].append(boot.vm_id)
    # Two real replays + the 4-VM simulated deploy.
    assert by_clock["wall"] == ["vm1", "vm2"]
    assert len(by_clock["sim"]) == 4
    sim = next(b for b in report.boots if b.clock == "sim")
    assert [p.phase for p in sim.phases] == ["vmm", "replay"]
    wave = next(w for w in report.waves
                if w["name"] == "deploy.wave")
    assert wave["vms"] == 4


def test_attribution_covers_every_chain_layer(trace_records):
    report = build_report(trace_records)
    assert {"cow", "cache", "base"} <= set(report.attribution)
    # The demo warms an 8 MiB working set via copy-on-read.
    assert report.cor_fill_bytes > 0
    assert report.quota_stops == 0


def test_event_totals_match_replayer_accounting(trace_records):
    # The Fig 9 invariant: block.read events are emitted exactly where
    # DriverStats counts, so the trace-derived base traffic equals the
    # ReplayResult totals the quickstart itself printed.
    report = build_report(trace_records)
    total_replayed = sum(s["base_bytes_read"]
                         for s in report.summaries)
    replay_paths = {s["base_path"] for s in report.summaries}
    event_bytes = sum(
        nbytes for path, nbytes
        in report.attribution["base"].paths.items()
        if path in replay_paths)
    assert total_replayed == event_bytes > 0
    text = format_report(report)
    assert "(match)" in text and "MISMATCH" not in text
