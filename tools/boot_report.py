#!/usr/bin/env python3
"""Render a traced run as a boot timeline + byte-attribution report.

Produce a trace first (any run works; the quickstart has a flag):

    PYTHONPATH=src python examples/quickstart.py --trace /tmp/boot.jsonl
    python tools/boot_report.py /tmp/boot.jsonl

All reconstruction logic lives in :mod:`repro.metrics.boot_report`;
this is the thin CLI.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.metrics.boot_report import (  # noqa: E402
    build_report,
    format_report,
)
from repro.metrics.tracing import load_trace, validate_trace  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace file to report on")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check every record before reporting")
    args = parser.parse_args(argv)

    try:
        records = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.validate:
        errors = validate_trace(records)
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            return 1

    report = build_report(records)
    print(f"trace: {args.trace} ({report.record_count} records)")
    print()
    print(format_report(report), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
