#!/usr/bin/env python3
"""Render a traced run as a boot timeline + byte-attribution report.

Produce a trace first (any run works; the quickstart has a flag):

    PYTHONPATH=src python examples/quickstart.py --trace /tmp/boot.jsonl
    python tools/boot_report.py /tmp/boot.jsonl

A cross-process run (v3 wire protocol with trace propagation) leaves
two traces — merge the storage node's into the client's for one causal
timeline:

    python tools/boot_report.py /tmp/client.jsonl --merge /tmp/node.jsonl

Traces can also be pulled straight off a running node's telemetry
endpoint (both the positional and --merge inputs accept URLs):

    python tools/boot_report.py http://127.0.0.1:18080/traces

All reconstruction logic lives in :mod:`repro.metrics.boot_report`;
this is the thin CLI.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.metrics.boot_report import (  # noqa: E402
    build_report,
    format_report,
    merge_traces,
)
from repro.metrics.tracing import load_trace, validate_trace  # noqa: E402


def _load(source: str) -> list[dict]:
    """Load a trace from a JSONL path or a live ``/traces`` URL.

    A bare ``http://host:port`` is completed to ``/traces``; a URL
    without an explicit ``?n=`` asks for the node's full retained ring
    rather than the endpoint's small default tail.
    """
    if not source.startswith(("http://", "https://")):
        return load_trace(source)
    import tempfile
    import urllib.request
    from urllib.parse import urlparse

    parsed = urlparse(source)
    if parsed.path in ("", "/"):
        source = source.rstrip("/") + "/traces"
    if "?" not in source:
        source += "?n=1000000"
    with urllib.request.urlopen(source, timeout=10.0) as resp:
        body = resp.read()
    with tempfile.NamedTemporaryFile(mode="wb", suffix=".jsonl",
                                     delete=False) as tmp:
        tmp.write(body)
        path = tmp.name
    try:
        return load_trace(path)
    finally:
        os.unlink(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace file, or a running "
                                      "node's http://host:port/traces URL")
    parser.add_argument("--merge", metavar="PEER_TRACE", default=None,
                        help="merge a peer process's trace (e.g. the "
                             "storage node's) into the causal timeline")
    parser.add_argument("--merge-prefix", default="peer-",
                        help="id prefix for colliding peer ids "
                             "(default: %(default)s)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check every record before reporting")
    args = parser.parse_args(argv)

    try:
        records = _load(args.trace)
        peer_records = (_load(args.merge)
                        if args.merge is not None else None)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.validate:
        errors = validate_trace(records)
        if peer_records is not None:
            errors += [f"peer {e}" for e in validate_trace(peer_records)]
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            return 1

    if peer_records is not None:
        records = merge_traces(records, peer_records,
                               prefix=args.merge_prefix)
        source = f"{args.trace} + {args.merge}"
    else:
        source = args.trace

    report = build_report(records)
    print(f"trace: {source} ({report.record_count} records)")
    print()
    print(format_report(report), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
