#!/usr/bin/env python3
"""Audit payload-copy overhead of the remote datapath.

Spins up both serving engines, runs identical read + write traffic
through a real :class:`RemoteImage`, and reports each side's
``bytes_copied / (wire_bytes_sent + wire_bytes_received)`` ratio — the
fraction of wire traffic that was also memcpy'd between user-space
buffers on the way through.  The event-loop engine's recv_into +
sendmsg framing should keep its server-side ratio at (almost exactly)
zero; the audit fails if it creeps above ``--budget``.

    PYTHONPATH=src python tools/copy_audit.py
    PYTHONPATH=src python tools/copy_audit.py --json --budget 0.02

Exit status: 0 when the event-loop engine is within budget, 1 when it
is not, 2 on usage/runtime errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.imagefmt.raw import RawImage  # noqa: E402
from repro.remote import BlockServer, RemoteImage  # noqa: E402
from repro.units import KiB, MiB  # noqa: E402


def _drive_traffic(threaded: bool, path: str, size: int) -> dict:
    """One engine, one connection, mixed read/write traffic."""
    base = RawImage.open(path, read_only=False)
    try:
        with BlockServer(threaded=threaded) as server:
            server.add_export("disk", base, writable=True)
            with RemoteImage.connect(server.url("disk"),
                                     read_only=False, depth=8,
                                     chunk_size=64 * KiB) as img:
                img.read(0, size)                    # sequential sweep
                for off in range(0, size, 256 * KiB):
                    img.read(off, 4 * KiB)           # small scattered
                img.write(64 * KiB, b"\xa5" * (192 * KiB))
                img.flush()
                client_copied = img.transport_stats.bytes_copied
            snap = server.export_stats("disk").summary()
            engine = server.engine
    finally:
        base.close()
    wire = snap["wire_bytes_sent"] + snap["wire_bytes_received"]
    return {
        "engine": engine,
        "wire_bytes": wire,
        "server_bytes_copied": snap["bytes_copied"],
        "client_bytes_copied": client_copied,
        "server_copy_ratio": snap["bytes_copied"] / wire if wire else 0.0,
        "read_ops": snap["read_ops"],
        "write_ops": snap["write_ops"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=float, default=0.02,
                        help="max allowed event-loop server copy ratio, "
                             "bytes_copied / wire_bytes "
                             "(default: %(default)s)")
    parser.add_argument("--size-mib", type=int, default=4,
                        help="image size driven through each engine "
                             "(default: %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="emit the audit as JSON on stdout")
    args = parser.parse_args(argv)
    if args.budget < 0 or args.size_mib < 1:
        parser.error("--budget must be >= 0 and --size-mib >= 1")

    size = args.size_mib * MiB
    results = []
    try:
        with tempfile.TemporaryDirectory(prefix="copy-audit-") as wd:
            path = os.path.join(wd, "disk.raw")
            img = RawImage.create(path, size)
            step = 1 * MiB
            for off in range(0, size, step):
                img.write(off, os.urandom(step))
            img.close()
            for threaded in (False, True):
                results.append(_drive_traffic(threaded, path, size))
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    eventloop = next(r for r in results if r["engine"] == "eventloop")
    ok = eventloop["server_copy_ratio"] <= args.budget

    if args.json:
        print(json.dumps({"budget": args.budget, "ok": ok,
                          "engines": results}, indent=2))
    else:
        for r in results:
            print(f"{r['engine']:>9}: wire={r['wire_bytes']:>10,}  "
                  f"srv_copied={r['server_bytes_copied']:>10,}  "
                  f"cli_copied={r['client_bytes_copied']:>10,}  "
                  f"ratio={r['server_copy_ratio']:.4f}")
        verdict = "within" if ok else "OVER"
        print(f"event-loop copy ratio "
              f"{eventloop['server_copy_ratio']:.4f} is {verdict} the "
              f"{args.budget:g} budget")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
