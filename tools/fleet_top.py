#!/usr/bin/env python3
"""Live fleet dashboard: top(1) for a cache-serving storage fleet.

Point it at the telemetry endpoints of running nodes (a quickstart
fleet works: ``python examples/quickstart.py --fleet``):

    python tools/fleet_top.py http://127.0.0.1:9101 http://127.0.0.1:9102

It polls every node's /metrics + /healthz, derives the fleet signals
(storage offload, cache hit ratio, wire compression, prefetch
effectiveness, merged read latency), renders sparkline trends, and
lists pending/firing SLO alerts.  For scripting:

    python tools/fleet_top.py --once --json http://127.0.0.1:9101

emits one poll's snapshot as JSON and exits.  Alert rules use the
grammar of :mod:`repro.metrics.alerts` and can be stacked:

    --rule 'storage_offload_fraction < 80% for 5' \\
    --rule 'node:up < 1 for 3 resolve 2'
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.metrics.alerts import RuleError, ThresholdRule  # noqa: E402
from repro.metrics.fleet import FleetAggregator, HttpTarget  # noqa: E402
from repro.metrics.fleet_dashboard import (  # noqa: E402
    SignalHistory,
    render_dashboard,
)

DEFAULT_RULES = (
    "node:up < 1 for 3 resolve 2",
    "node:unhealthy >= 1 for 3 resolve 2",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("targets", nargs="+",
                        help="node telemetry endpoints "
                             "(http://host:port[/metrics])")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="poll interval seconds (default: "
                             "%(default)s)")
    parser.add_argument("--timeout", type=float, default=1.0,
                        help="per-node scrape timeout (default: "
                             "%(default)s)")
    parser.add_argument("--once", action="store_true",
                        help="poll once, print, exit")
    parser.add_argument("--polls", type=int, default=0,
                        help="exit after N polls (0 = run forever)")
    parser.add_argument("--json", action="store_true",
                        help="print snapshots as JSON instead of the "
                             "dashboard")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="RULE",
                        help="SLO rule '[node:]SIGNAL OP NUM [for N] "
                             "[resolve M]' (repeatable; replaces the "
                             "defaults)")
    args = parser.parse_args(argv)

    try:
        rules = [ThresholdRule.parse(text)
                 for text in (args.rule or DEFAULT_RULES)]
    except RuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    targets = [HttpTarget.from_url(url) for url in args.targets]
    aggregator = FleetAggregator(
        targets, interval=args.interval, timeout=args.timeout,
        rules=rules)
    history = SignalHistory()
    polls = 1 if args.once else args.polls

    try:
        n = 0
        while True:
            snapshot = aggregator.poll_once()
            history.observe(snapshot)
            if args.json:
                print(json.dumps(snapshot.as_dict(), sort_keys=True,
                                 default=str))
            else:
                frame = render_dashboard(snapshot, history)
                if not args.once and sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(frame)
            n += 1
            if polls and n >= polls:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        aggregator.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
