#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from benchmarks/results/*.json.

Run the benchmark suite first (``pytest benchmarks/ --benchmark-only``),
then:  python tools/gen_experiments_md.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.metrics.ascii_plot import plot_log  # noqa: E402
from repro.metrics.collectors import ExperimentLog  # noqa: E402
from repro.metrics.reporting import format_series_table  # noqa: E402

ROOT = os.path.join(os.path.dirname(__file__), "..")
RESULTS = os.path.join(ROOT, "benchmarks", "results")
OUT = os.path.join(ROOT, "EXPERIMENTS.md")

# Paper reference points per experiment: (description, paper value).
PAPER_ANCHORS: dict[str, list[tuple[str, str]]] = {
    "fig02": [
        ("1GbE, 1 node", "~35 s"),
        ("1GbE, 64 nodes", "~140 s (linear growth past 8 nodes)"),
        ("32GbIB, all node counts", "flat ~35 s"),
    ],
    "fig03": [
        ("either network, 1 VMI", "network-bound (Fig 2 right edge)"),
        ("either network, 64 VMIs", "~800–900 s (disk queueing)"),
        ("crossover", "disk dominates from ~16 VMIs"),
    ],
    "tab1": [
        ("CentOS 6.3", "85.2 MB"),
        ("Debian 6.0.7", "24.9 MB"),
        ("Windows Server 2012", "195.8 MB"),
    ],
    "fig08": [
        ("warm / cold-on-mem / QCOW2", "all ≈ same boot time"),
        ("cold-on-disk", "much slower, grows with quota"),
    ],
    "fig09": [
        ("cold cache @64 KiB clusters", "> QCOW2 traffic (~2x)"),
        ("cold cache @512 B clusters", "≈ QCOW2 traffic"),
        ("warm cache", "traffic falls as quota grows"),
    ],
    "fig10": [
        ("warm/cold boot time @512 B, mem-staged", "≈ QCOW2"),
        ("warm tx size at quota ≥ ~90 MB", "→ ~0"),
    ],
    "tab2": [
        ("CentOS 6.3", "93 MB"),
        ("Windows Server 2012", "201 MB"),
        ("Debian 6.0.7", "40 MB"),
    ],
    "fig11": [
        ("warm cache, 64 nodes, 1GbE", "≈ single-VM boot time"),
        ("cold cache", "≈ QCOW2"),
    ],
    "fig12": [
        ("warm cache, any #VMIs", "flat (both bottlenecks bypassed)"),
        ("cold/QCOW2 at 64 VMIs", "disk-bound collapse"),
    ],
    "fig14": [
        ("32GbIB warm", "flat, disk bottleneck resolved, no overhead"),
        ("1GbE warm", "network-bound but far below QCOW2 @64 VMIs"),
        ("cold", "slightly above QCOW2 (copy-back charged)"),
    ],
    "sec6": [
        ("compute disk vs storage memory, warm", "≤1 % apart"),
    ],
    "alg1": [
        ("Algorithm 1 branches", "local-warm, storage-warm, cold all exercised"),
    ],
    "ablation-scheduler": [
        ("§3.4 cache-aware scheduler", "paper: future work; quantified here"),
    ],
    "ablation-mixed": [
        ("§5.3.1 mixed warm/cold", "paper: qualitative only; quantified here"),
    ],
    "ablation-prefetch": [
        ("§7.3 informed prefetching", "'no substantial benefit' — the VM "
         "waits only 17% of its boot on reads, prefetching can only mask "
         "that"),
    ],
    "ext-snapshot": [
        ("§8 memory-snapshot caching", "paper: future work; implemented — "
         "cached resume must beat boot and stay flat, uncached resume "
         "loses at scale"),
    ],
    "ext-remote": [
        ("remote base transparency", "an NBD-served base must move "
         "byte-for-byte the traffic of a local base; warm caches keep "
         "the boot off the wire"),
    ],
}

ORDER = ["tab1", "fig02", "fig03", "fig08", "fig09", "fig10", "tab2",
         "fig11", "fig12", "fig14", "sec6", "alg1",
         "ablation-scheduler", "ablation-mixed", "ablation-prefetch",
         "ext-snapshot", "ext-remote"]

X_LABELS = {
    "fig02": "# nodes", "fig03": "# VMIs", "fig08": "quota MB",
    "fig09": "quota MB", "fig10": "quota MB", "fig11": "# nodes",
    "fig12": "# VMIs", "fig14": "# VMIs", "tab1": "os #",
    "tab2": "os #", "sec6": "network #", "alg1": "wave",
    "ablation-scheduler": "# VMs", "ablation-mixed": "warm fraction",
    "ablation-prefetch": "prefetch",
    "ext-snapshot": "# nodes",
    "ext-remote": "case",
}

HEADER = """\
# EXPERIMENTS — paper vs. measured

Regenerated from `benchmarks/results/*.json`
(`pytest benchmarks/ --benchmark-only`, then
`python tools/gen_experiments_md.py`).

The testbed is a discrete-event simulation calibrated in
`src/repro/sim/calibration.py`; traffic/size experiments run on real
image files through the reproduced driver. We reproduce *shapes* (who
wins, what saturates, where curves cross), not wall-clock digits — each
benchmark asserts its paper claims as executable shape checks, so this
document records numbers a green benchmark suite already validated.

"""


def main() -> int:
    if not os.path.isdir(RESULTS):
        print("no benchmarks/results/ - run the benchmark suite first",
              file=sys.stderr)
        return 1
    sections = []
    seen = set()
    available = {f[:-5] for f in os.listdir(RESULTS)
                 if f.endswith(".json")}
    for exp_id in ORDER + sorted(available - set(ORDER)):
        path = os.path.join(RESULTS, f"{exp_id}.json")
        if not os.path.exists(path) or exp_id in seen:
            continue
        seen.add(exp_id)
        log = ExperimentLog.load(path)
        lines = [f"## {log.experiment_id}: {log.title}", ""]
        anchors = PAPER_ANCHORS.get(exp_id)
        if anchors:
            lines.append("Paper says:")
            lines += [f"* {what}: **{value}**" for what, value in anchors]
            lines.append("")
        lines.append("Measured:")
        lines.append("```")
        lines.append(format_series_table(
            log, X_LABELS.get(exp_id, "x")))
        lines.append("```")
        if any(len(s.points) >= 3 for s in log.series):
            lines.append("")
            lines.append("```")
            lines.append(plot_log(log,
                                  x_label=X_LABELS.get(exp_id, "x")))
            lines.append("```")
        lines.append("")
        sections.append("\n".join(lines))
    body = HEADER + "\n".join(sections)
    body += _deviations()
    with open(OUT, "w", encoding="utf-8") as f:
        f.write(body)
    print(f"wrote {OUT} ({len(seen)} experiments)")
    return 0


def _deviations() -> str:
    return """\
## Known deviations and why they are acceptable

* **Absolute boot times** sit within ~30 % of the paper's axes (e.g.
  single CentOS boot ≈ 31–45 s vs the paper's ~35 s; 64-VMI QCOW2
  collapse ≈ 600–700 s vs ~800–900 s). The testbed is a calibrated
  model, not DAS-4; every *relative* claim (orderings, saturation,
  crossovers, flatness) is asserted by shape checks in the benchmarks.
* **Table 2, Debian**: we measure ≈ 26 MB vs the paper's 40 MB. Our
  512 B-cluster cache adds ~4–6 % metadata over the 24.9 MB working
  set; the paper's Debian image carried an unusually large metadata
  overhead it does not explain. CentOS (89 vs 93 MB) and Windows
  (205 vs 201 MB) land on the paper's numbers.
* **§6 placement difference** measures 2–6 % between compute-disk and
  storage-memory warm caches vs the paper's "at most 1 %" — same
  direction (remote memory slightly faster on IB), same conclusion
  (placement is an operational choice, not a performance one).
* **Boot traces are synthetic**, calibrated to every published
  observable (Table 1 working sets, small-read regime, random access,
  17 % read-wait split). Real guest OS boots are not available in this
  environment; the trace layer is pluggable (`BootTrace.load`) should
  real traces be captured later.
"""


if __name__ == "__main__":
    sys.exit(main())
