#!/usr/bin/env python3
"""Fsck for repro images: check (and optionally repair) image files.

Checks one or more images and prints a human or JSON report:

    python tools/img_check.py /var/lib/caches/*.qcow2
    python tools/img_check.py --json --repair cache.qcow2

Exit codes:

* 0 — every image is clean (after repair, when ``--repair`` was given);
* 2 — at least one image has corruption errors;
* 3 — no corruption, but at least one image leaks clusters;
* 1 — an image could not be opened at all.

QCOW2 images get the full metadata/refcount check of
``Qcow2Image.check`` (dirty-bit detection, refcount drift, stale cache
size, leaked clusters); raw images only get an open/size sanity check,
since a raw file has no metadata to corrupt.  ``--repair`` opens
read-write and rebuilds derived metadata from the L1/L2 walk — the
same machinery crash recovery uses on a dirty open (DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ImageError  # noqa: E402
from repro.imagefmt.driver import open_image, probe_format  # noqa: E402
from repro.imagefmt.qcow2 import Qcow2Image  # noqa: E402

EXIT_CLEAN = 0
EXIT_OPEN_FAILED = 1
EXIT_CORRUPT = 2
EXIT_LEAKS = 3


def check_one(path: str, *, repair: bool = False) -> dict:
    """Check a single image; returns a JSON-ready result dict."""
    result: dict = {"path": path, "errors": [], "repairs": [],
                    "leaked_clusters": 0, "clean": False}
    try:
        fmt = probe_format(path)
        result["format"] = fmt
        if fmt != "qcow2":
            # Raw (or unknown-but-openable) images: no metadata to
            # check beyond "it opens and has a size".
            with open_image(path, fmt) as img:
                result["virtual_size"] = img.size
            result["clean"] = True
            return result
        with Qcow2Image.open(path, read_only=not repair,
                             open_backing=False) as img:
            report = img.check(repair=repair)
            post = img.check() if repair else report
            result["errors"] = list(report.errors)
            result["repairs"] = list(report.repairs)
            result["leaked_clusters"] = report.leaked_clusters
            result["allocated_clusters"] = report.allocated_clusters
            result["is_cache"] = img.is_cache
            if img.is_cache:
                result["cache_quota"] = img.cache_quota
                result["cache_current_size"] = \
                    img.header.cache_ext.current_size
            if img.last_recovery is not None:
                result["recovery"] = img.last_recovery.as_dict()
            result["clean"] = post.ok and post.leaked_clusters == 0
    except (ImageError, OSError, ValueError) as exc:
        result["open_error"] = str(exc)
    return result


def exit_code(results: list[dict]) -> int:
    code = EXIT_CLEAN
    for r in results:
        if "open_error" in r:
            return EXIT_OPEN_FAILED
        if r["errors"] and not r["clean"]:
            code = max(code, EXIT_CORRUPT)
        elif r["leaked_clusters"] and not r["clean"]:
            code = max(code, EXIT_LEAKS)
    return code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="image files to check")
    parser.add_argument("--repair", action="store_true",
                        help="fix repairable problems (opens read-write)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output (one JSON document)")
    args = parser.parse_args(argv)

    results = [check_one(p, repair=args.repair) for p in args.paths]

    if args.json:
        print(json.dumps({"images": results,
                          "clean": all(r["clean"] for r in results)},
                         indent=2))
    else:
        for r in results:
            if "open_error" in r:
                print(f"{r['path']}: OPEN FAILED: {r['open_error']}")
                continue
            for err in r["errors"]:
                print(f"{r['path']}: ERROR: {err}")
            for fix in r["repairs"]:
                print(f"{r['path']}: REPAIRED: {fix}")
            if r["leaked_clusters"]:
                print(f"{r['path']}: {r['leaked_clusters']} leaked "
                      f"cluster(s)")
            if r["clean"]:
                print(f"{r['path']}: clean ({r['format']})")
    return exit_code(results)


if __name__ == "__main__":
    sys.exit(main())
